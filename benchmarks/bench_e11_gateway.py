"""E11 — Multi-session gateway: shared-cache scaling (tables).

Three questions, all on concurrent multi-user replays through
``repro.serve``:

1. **Sharing ablation** — replaying the same multi-user streams, does
   one shared decision cache beat private per-session caches? It must:
   a per-session cache re-pays the cold checker cost once *per user* for
   every query shape, while the shared cache pays it once per shape,
   period. Expected: strictly higher hit rate (and it grows with the
   number of distinct users).

2. **Scaling** — throughput and hit rate as sessions and workers grow,
   with write invalidation in the mix.

3. **Safety** — with ``verify_cached_decisions`` on, every cache hit is
   replayed through the uncached :class:`ComplianceChecker`; across all
   E11 runs there must be **zero** disagreements (a shared, generalized
   decision is only ever reused when the requesting session would have
   been allowed by a fresh check).

Marked ``slow``: full-checker verification on every hit is expensive by
design.
"""

import random

import pytest

from repro.bench.harness import print_table
from repro.serve import EnforcementGateway, GatewayConfig, WorkloadDriver

from conftest import fresh_app

pytestmark = pytest.mark.slow

#: Disagreements observed across every run in this module; asserted zero.
DISAGREEMENTS: list[tuple[str, int]] = []


def replay(
    app_name: str,
    users: int,
    requests: int,
    workers: int,
    cache_mode: str,
    write_every: int = 0,
    seed: int = 11,
):
    app, db = fresh_app(app_name, size=users)
    policy = app.ground_truth_policy()
    gateway = EnforcementGateway(
        db,
        policy,
        GatewayConfig(cache_mode=cache_mode, verify_cached_decisions=True),
    )
    driver = WorkloadDriver(app, gateway, workers=workers, write_every=write_every)
    stream = app.request_stream(db, random.Random(seed), requests)
    report = driver.run(stream)
    counters = report.metrics.counters
    DISAGREEMENTS.append(
        (
            f"{app_name}/u{users}/w{workers}/{cache_mode}",
            counters.get("cache_disagreements", 0),
        )
    )
    return report


def ablation_rows():
    rows = []
    for users in (8, 16, 32):
        shared = replay("social", users, 240, 4, "shared")
        private = replay("social", users, 240, 4, "per-session")
        rows.append(
            (
                users,
                shared.sessions,
                round(shared.hit_rate, 3),
                round(private.hit_rate, 3),
                round(shared.hit_rate - private.hit_rate, 3),
                shared.blocked + private.blocked,
            )
        )
    return rows


def scaling_rows():
    rows = []
    for workers in (1, 2, 4, 8):
        report = replay(
            "social", 24, 240, workers, "shared", write_every=4, seed=13
        )
        stages = report.metrics.stages
        rows.append(
            (
                workers,
                report.sessions,
                round(report.throughput_rps, 1),
                round(report.hit_rate, 3),
                report.writes,
                report.metrics.counters.get("templates_invalidated", 0),
                round(stages.get("check", {}).get("p50_us", 0.0)),
            )
        )
    return rows


def workload_rows():
    rows = []
    for app_name in ("calendar", "hospital", "employees", "social"):
        report = replay(app_name, 16, 160, 4, "shared", write_every=5, seed=9)
        counters = report.metrics.counters
        rows.append(
            (
                app_name,
                report.requests,
                report.completed,
                report.blocked + report.aborted,
                round(report.hit_rate, 3),
                counters.get("templates_invalidated", 0),
                counters.get("cache_disagreements", 0),
            )
        )
    return rows


def test_e11_gateway(benchmark, capsys):
    ablation = ablation_rows()
    scaling = scaling_rows()
    workloads = workload_rows()

    # One tight measured pass for the benchmark fixture: a warmed shared
    # cache serving a small concurrent batch.
    app, db = fresh_app("social", size=12)
    policy = app.ground_truth_policy()
    gateway = EnforcementGateway(db, policy, GatewayConfig())
    driver = WorkloadDriver(app, gateway, workers=4)
    stream = app.request_stream(db, random.Random(3), 60)
    driver.run(stream)  # warm

    def warm_replay():
        driver.run(stream)

    benchmark.pedantic(warm_replay, rounds=5, iterations=1)

    with capsys.disabled():
        print_table(
            "E11a",
            "shared vs per-session decision cache (social, 240 requests, 4 workers)",
            ["users", "sessions", "shared hit", "private hit", "delta", "blocked"],
            ablation,
        )
        print_table(
            "E11b",
            "gateway scaling with write invalidation (social, 24 users)",
            [
                "workers",
                "sessions",
                "req/s",
                "hit rate",
                "writes",
                "invalidated",
                "check p50 µs",
            ],
            scaling,
        )
        print_table(
            "E11c",
            "gateway across workloads (16 users, 4 workers, writes every 5)",
            [
                "app",
                "requests",
                "completed",
                "denied",
                "hit rate",
                "invalidated",
                "disagreements",
            ],
            workloads,
        )
        total = sum(count for _, count in DISAGREEMENTS)
        print(
            f"\ncache-vs-checker disagreements across {len(DISAGREEMENTS)}"
            f" E11 runs: {total}"
        )

    # (a) sharing strictly beats private caches at every population size;
    for users, _, shared_hit, private_hit, _, _ in ablation:
        assert shared_hit > private_hit, (users, shared_hit, private_hit)
    # (b) no cached decision ever disagreed with the uncached checker.
    assert all(count == 0 for _, count in DISAGREEMENTS), DISAGREEMENTS
