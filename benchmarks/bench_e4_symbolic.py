"""E4 — Language-based policy extraction (§3.2.1, Example 3.1).

Table: per app, paths explored, views emitted, precision/recall against
the hand-written ground truth, and wall time. The Listing 1 row checks
the paper's concrete claim: show_event alone yields exactly {V1, V2}.
"""

import time

from repro.bench.harness import print_table
from repro.extract.symbolic import SymbolicExtractor
from repro.policy.compare import compare_policies

from conftest import ALL_APPS, fresh_app


def listing1_row():
    app, db = fresh_app("calendar")
    extractor = SymbolicExtractor(db.schema)
    started = time.perf_counter()
    policy, report = extractor.extract([app.handlers["show_event"]])
    elapsed = time.perf_counter() - started
    return (
        "calendar (Listing 1 only)",
        report.paths_explored["show_event"],
        len(policy),
        "= {V1, V2}" if len(policy) == 2 else "UNEXPECTED",
        "-",
        "-",
        f"{elapsed * 1e3:.1f}",
    )


def per_app_rows():
    rows = [listing1_row()]
    for name in ALL_APPS:
        app, db = fresh_app(name)
        extractor = SymbolicExtractor(db.schema)
        started = time.perf_counter()
        policy, report = extractor.extract(list(app.handlers.values()))
        elapsed = time.perf_counter() - started
        comparison = compare_policies(policy, app.ground_truth_policy())
        rows.append(
            (
                name,
                sum(report.paths_explored.values()),
                len(policy),
                "exact" if comparison.exact else comparison.describe(),
                f"{comparison.precision:.2f}",
                f"{comparison.recall:.2f}",
                f"{elapsed * 1e3:.1f}",
            )
        )
    return rows


def test_e4_symbolic_extraction(benchmark, capsys):
    app, db = fresh_app("calendar")

    def extract_all():
        extractor = SymbolicExtractor(db.schema)
        return extractor.extract(list(app.handlers.values()))

    policy, _ = benchmark.pedantic(extract_all, rounds=10, iterations=1)
    assert compare_policies(policy, app.ground_truth_policy()).exact

    with capsys.disabled():
        print_table(
            "E4",
            "symbolic policy extraction vs ground truth",
            ["app", "paths", "views", "match", "precision", "recall", "ms"],
            per_app_rows(),
        )
