"""E7 — Prior-agnostic privacy verdict matrix (§4.3, Examples 4.1/4.2).

Table: each scenario's PQI/NQI verdict next to the paper's expectation,
plus checker wall time. The employee rows are Example 4.2 verbatim; the
hospital row is Example 4.1 with the treated-by-assigned-doctor
constraint supplied as a TGD.
"""

import time

from repro.bench.harness import print_table
from repro.evaluate.nqi import check_nqi
from repro.evaluate.pqi import check_pqi
from repro.relalg.chase import TGD
from repro.relalg.cq import Atom, Var
from repro.relalg.rewrite import ViewDef
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app, employees, hospital

from conftest import fresh_app

HOSPITAL_TGD = TGD(
    body=(Atom("PatientConditions", (Var("p"), Var("d"))),),
    head=(
        Atom("Patients", (Var("p"), Var("n"), Var("doc"))),
        Atom("DoctorDiseases", (Var("doc"), Var("d"))),
    ),
    name="treated-by-assigned-doctor",
)


def tr1(sql, schema, name=None):
    return translate_select(parse_select(sql), schema, name).disjuncts[0]


def scenarios():
    es = employees.make_schema()
    q1 = tr1(employees.Q1_SQL, es, "Q1")
    q2 = tr1(employees.Q2_SQL, es, "Q2")
    hs = hospital.make_schema()
    h_views = hospital.ground_truth_policy().view_defs({})
    h_sensitive = tr1(
        hospital.sensitive_query_sql().replace("?PatientId", "1"), hs, "S"
    )
    cs = calendar_app.make_schema()
    c_views = calendar_app.ground_truth_policy().view_defs({"MyUId": 1})
    c_sensitive = tr1("SELECT Title FROM Events", cs, "S")
    other_user = tr1("SELECT EId FROM Attendance WHERE UId = 99", cs, "S")
    return [
        # (label, sensitive, views, constraints, expected PQI, expected NQI)
        ("Ex4.2 V={Q1}, S=Q2", q2, [ViewDef("Q1", q1)], None, True, False),
        ("Ex4.2 V={Q2}, S=Q1", q1, [ViewDef("Q2", q2)], None, False, True),
        ("Ex4.1 hospital + TGD", h_sensitive, h_views, [HOSPITAL_TGD], False, True),
        ("Ex4.1 hospital, no TGD", h_sensitive, h_views, None, False, False),
        ("calendar: all titles", c_sensitive, c_views, None, True, False),
        ("calendar: user 99 attnd.", other_user, c_views, None, True, False),
        (
            "calendar sans V4: user 99",
            other_user,
            [v for v in c_views if v.name != "V4"],
            None,
            False,
            False,
        ),
    ]


def matrix_rows():
    rows = []
    for label, sensitive, views, constraints, want_pqi, want_nqi in scenarios():
        started = time.perf_counter()
        pqi = check_pqi(sensitive, views, constraints=constraints)
        nqi = check_nqi(sensitive, views, constraints=constraints)
        elapsed = (time.perf_counter() - started) * 1e3
        status = "ok" if pqi.holds == want_pqi and nqi.holds == want_nqi else "MISMATCH"
        rows.append(
            (
                label,
                "PQI" if pqi.holds else "-",
                "NQI" if nqi.holds else "-",
                f"{'PQI' if want_pqi else '-'}/{'NQI' if want_nqi else '-'}",
                f"{elapsed:.1f}",
                status,
            )
        )
    return rows


def test_e7_pqi_nqi_matrix(benchmark, capsys):
    es = employees.make_schema()
    q1 = tr1(employees.Q1_SQL, es, "Q1")
    q2 = tr1(employees.Q2_SQL, es, "Q2")

    def both_checks():
        return (
            check_pqi(q2, [ViewDef("Q1", q1)]).holds,
            check_nqi(q1, [ViewDef("Q2", q2)]).holds,
        )

    pqi, nqi = benchmark(both_checks)
    assert pqi and nqi

    with capsys.disabled():
        print_table(
            "E7",
            "PQI/NQI verdicts vs the paper's examples",
            ["scenario", "PQI", "NQI", "expected", "ms", "status"],
            matrix_rows(),
        )
