"""E9 — Violation diagnosis on seeded violations (§5.2, table).

Each row is a seeded violation — either an application overreach (a
query issued without its guard) or a policy gap (a view removed from the
policy). Columns report whether a counterexample was found, how many
validated patches of each form were generated, the triage verdict's
direction, and the wall time.
"""

import time

from repro.bench.harness import print_table
from repro.diagnose import diagnose
from repro.policy import Policy
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app, employees, social

from conftest import fresh_app


def bound(sql, args=()):
    return bind_parameters(parse_select(sql), list(args))


def seeded_violations():
    """(label, stmt, bindings, policy, schema, expected-culprit)."""
    cases = []

    capp, cdb = fresh_app("calendar")
    cpolicy = capp.ground_truth_policy()
    cases.append(
        (
            "calendar: unguarded detail fetch",
            bound("SELECT * FROM Events WHERE EId = ?", [2]),
            {"MyUId": 1},
            cpolicy,
            cdb.schema,
            "application",
        )
    )
    cases.append(
        (
            "calendar: full event dump",
            bound("SELECT * FROM Events"),
            {"MyUId": 1},
            cpolicy,
            cdb.schema,
            "application",
        )
    )
    gapped = Policy([v for v in cpolicy.views if v.name != "V3"], name="gapped")
    cases.append(
        (
            "calendar: missing self view",
            bound("SELECT * FROM Users WHERE UId = ?", [1]),
            {"MyUId": 1},
            gapped,
            cdb.schema,
            "policy",
        )
    )

    eapp, edb = fresh_app("employees")
    epolicy = eapp.ground_truth_policy()
    cases.append(
        (
            "employees: salary scrape",
            bound("SELECT Name, Salary FROM Employees"),
            {"MyUId": 1},
            epolicy,
            edb.schema,
            "application",
        )
    )
    egapped = Policy(
        [v for v in epolicy.views if v.name != "Vseniors"], name="egapped"
    )
    cases.append(
        (
            "employees: missing seniors view",
            bound("SELECT Name FROM Employees WHERE Age >= 60"),
            {"MyUId": 1},
            egapped,
            edb.schema,
            "either",
        )
    )

    sapp, sdb = fresh_app("social")
    spolicy = sapp.ground_truth_policy()
    cases.append(
        (
            "social: friends-only content grab",
            bound("SELECT Content FROM Posts WHERE PId = ?", [1]),
            {"MyUId": 2},
            spolicy,
            sdb.schema,
            "application",
        )
    )
    return cases


def diagnosis_rows():
    rows = []
    for label, stmt, bindings, policy, schema, expected in seeded_violations():
        started = time.perf_counter()
        report = diagnose(stmt, bindings, policy, schema)
        elapsed = (time.perf_counter() - started) * 1e3
        if report.verdict.startswith("either"):
            direction = "either"
        elif "application" in report.verdict:
            direction = "application"
        elif "policy" in report.verdict:
            direction = "policy"
        else:
            direction = "other"
        matched = "either" in (expected, direction) or direction == expected
        rows.append(
            (
                label,
                "yes" if report.counterexample else "no",
                len(report.policy_patches),
                len(report.narrowing_patches),
                len(report.access_check_patches),
                direction,
                "ok" if matched else "MISMATCH",
                f"{elapsed:.0f}",
            )
        )
    return rows


def test_e9_diagnosis(benchmark, capsys):
    app, db = fresh_app("calendar")
    policy = app.ground_truth_policy()
    stmt = bound("SELECT * FROM Events WHERE EId = ?", [2])

    def run_diagnosis():
        return diagnose(stmt, {"MyUId": 1}, policy, db.schema)

    report = benchmark.pedantic(run_diagnosis, rounds=10, iterations=1)
    assert report.counterexample is not None
    assert report.access_check_patches

    with capsys.disabled():
        print_table(
            "E9",
            "diagnosis of seeded violations",
            [
                "violation",
                "counterex.",
                "policy patches",
                "narrowings",
                "access checks",
                "verdict",
                "triage",
                "ms",
            ],
            diagnosis_rows(),
        )
