"""E17 — Compiled decisions: per-skeleton templates and batched checking.

Five questions about the PR-8 compilation layer (``repro.relalg.compile``,
the checker's template fast path, the gateway's ``CheckBatcher``):

1. **E17a — zero disagreements.** A replayed decision stream (random SPJ
   statements, random traces, every calendar/social shape the workloads
   issue) through a compiled checker and a template-free twin must agree
   on every (sql, bindings, allow/block) triple. The headline soundness
   claim: compilation changes the work per decision, never the decision.

2. **E17b — throughput vs skeleton coverage.** The fast path pays when
   statements repeat by skeleton. Streams with 1, 5, and 25 distinct
   shapes at fixed length, compiled vs generic: speedup should grow as
   coverage concentrates.

3. **E17c — the E13 miss-heavy workload, compiled on/off.** The gateway
   rerun this PR is about: social app, decision cache off (every request
   reaches the checker), compiled vs generic, with the host core count
   recorded alongside (the compiled path is single-core algorithmic
   work, not parallelism — the cores column proves the speedup is not
   hidden multicore).

4. **E17d — epoch rebuild cost.** ``hot_reload`` now compiles the policy
   per epoch; the report's ``compile_s`` must be milliseconds-scale and
   paid pre-swap (swap pause stays microseconds).

5. **E17e — reload under load.** Traffic hammers a compiled+batched
   gateway while the policy hot-swaps; every audited decision re-checked
   against a template-free checker for its stamped version. Zero torn
   decisions.

``E17_QUICK=1`` shrinks sizes for CI smoke runs. Marked ``slow``.
"""

import os
import random
import threading
import time

import pytest

from repro.bench.harness import print_table
from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import PolicyViolation
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.lifecycle import hot_reload
from repro.relalg import memo
from repro.relalg.compile import compile_policy
from repro.relalg.translate import translate_select
from repro.serve import EnforcementGateway, GatewayConfig, WorkloadDriver
from repro.serve.pool import _TraceReplica
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.sqlir.printer import to_sql
from repro.workloads import calendar_app

from conftest import fresh_app

pytestmark = pytest.mark.slow

QUICK = os.environ.get("E17_QUICK", "") not in ("", "0")


# --------------------------------------------------------------------------
# Shared stream machinery
# --------------------------------------------------------------------------

SHAPES = [
    ("SELECT EId FROM Attendance WHERE UId = ?", 1),
    ("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", 2),
    ("SELECT * FROM Events WHERE EId = ?", 1),
    ("SELECT Title, Loc FROM Events WHERE EId = ?", 1),
    ("SELECT Name FROM Users WHERE UId = ?", 1),
    ("SELECT EId FROM Attendance WHERE UId = ? AND EId IN (?, ?)", 3),
    ("SELECT COUNT(*) FROM Events", 0),
    ("SELECT Time FROM Events WHERE EId = ?", 1),
]


def decision_stream(n: int, shapes, seed: int = 7):
    rng = random.Random(seed)
    stream = []
    for _ in range(n):
        sql, holes = shapes[rng.randrange(len(shapes))]
        args = [rng.randint(1, 6) for _ in range(holes)]
        user = rng.randint(1, 6)
        witnessed = [
            (user, rng.randint(1, 6)) for _ in range(rng.randrange(3))
        ]
        stream.append((bind_parameters(parse_select(sql), args), user, witnessed))
    return stream


def make_trace(schema, witnessed):
    trace = Trace()
    for uid, eid in witnessed:
        guard = translate_select(
            bind_parameters(
                parse_select("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?"),
                [uid, eid],
            ),
            schema,
        ).disjuncts[0]
        trace.record("guard", guard, Result(columns=["c"], rows=[(1,)]))
    return trace


# --------------------------------------------------------------------------
# E17a — replayed decision agreement, compiled vs template-free
# --------------------------------------------------------------------------


def agreement_rows(decisions: int):
    schema = calendar_app.make_schema()
    policy = calendar_app.ground_truth_policy()
    compiled = ComplianceChecker(
        schema, policy, compiled=compile_policy(schema, policy)
    )
    generic = ComplianceChecker(schema, policy)
    stream = decision_stream(decisions, SHAPES, seed=31)
    disagreements = []
    for stmt, user, witnessed in stream:
        trace = make_trace(schema, witnessed)
        got = compiled.check(stmt, {"MyUId": user}, trace)
        want = generic.check(stmt, {"MyUId": user}, trace)
        if got.allowed != want.allowed:
            disagreements.append((to_sql(stmt), user, got.allowed, want.allowed))
    hits = compiled.skeletons.compiled_hits
    rows = [
        (
            decisions,
            hits,
            round(hits / decisions, 3),
            compiled.skeletons.size,
            compiled.skeletons.blocks_stored,
            len(disagreements),
        )
    ]
    return rows, disagreements


# --------------------------------------------------------------------------
# E17b — throughput vs skeleton coverage
# --------------------------------------------------------------------------


def timed_checks(checker, stream):
    started = time.perf_counter()
    for stmt, user, _ in stream:
        checker.check(stmt, {"MyUId": user})
    return time.perf_counter() - started


def coverage_rows(checks: int):
    schema = calendar_app.make_schema()
    policy = calendar_app.ground_truth_policy()
    rows = []
    for shape_count in (1, 5, len(SHAPES)):
        shapes = SHAPES[:shape_count]
        stream = decision_stream(checks, shapes, seed=shape_count)
        memo.clear_memos()
        generic_s = timed_checks(ComplianceChecker(schema, policy), stream)
        memo.clear_memos()
        compiled_checker = ComplianceChecker(
            schema, policy, compiled=compile_policy(schema, policy)
        )
        compiled_s = timed_checks(compiled_checker, stream)
        rows.append(
            (
                shape_count,
                checks,
                round(checks / generic_s, 1),
                round(checks / compiled_s, 1),
                round(generic_s / compiled_s, 2),
                round(
                    compiled_checker.skeletons.compiled_hits / checks, 3
                ),
            )
        )
    return rows


# --------------------------------------------------------------------------
# E17c — the E13 miss-heavy gateway workload, compiled on/off
# --------------------------------------------------------------------------


def replay_miss_heavy(compile_checks: bool, requests: int, seed: int = 11):
    """The E13a setup: social app, decision cache off, every request a miss."""
    app, db = fresh_app("social", size=16)
    gateway = EnforcementGateway(
        db,
        app.ground_truth_policy(),
        GatewayConfig(cache_mode="none", compile_checks=compile_checks),
    )
    driver = WorkloadDriver(app, gateway, workers=4)
    stream = app.request_stream(db, random.Random(seed), requests)
    try:
        report = driver.run(stream)
        counters = gateway.snapshot().counters
    finally:
        gateway.close()
    return report, counters


def miss_heavy_rows(requests: int):
    cores = os.cpu_count() or 1
    rows = []
    baseline = None
    for compile_checks in (False, True):
        report, counters = replay_miss_heavy(compile_checks, requests)
        if baseline is None:
            baseline = report.throughput_rps
        rows.append(
            (
                "on" if compile_checks else "off",
                cores,
                report.requests,
                round(report.throughput_rps, 1),
                round(report.throughput_rps / baseline, 2) if baseline else 0,
                counters.get("compiled_hits", 0),
                counters.get("compile_misses", 0),
                counters.get("batch_checks", 0),
            )
        )
    speedup = rows[-1][4]
    return rows, speedup


# --------------------------------------------------------------------------
# E17d — epoch rebuild cost
# --------------------------------------------------------------------------


def rebuild_rows():
    app, db = fresh_app("calendar", size=10)
    gateway = EnforcementGateway(db, app.ground_truth_policy(), GatewayConfig())
    rows = []
    try:
        for version in (2, 3, 4):
            report = hot_reload(gateway, app.ground_truth_policy(), version=version)
            rows.append(
                (
                    version,
                    round(report.build_s * 1e3, 2),
                    round(report.compile_s * 1e3, 2),
                    round(report.swap_pause_s * 1e6, 1),
                    report.drained,
                )
            )
    finally:
        gateway.close()
    return rows


# --------------------------------------------------------------------------
# E17e — hot reload under load: zero torn decisions on the compiled path
# --------------------------------------------------------------------------


def reload_under_load(reloads: int):
    app, db = fresh_app("calendar", size=10)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    truth = app.ground_truth_policy()
    from repro.policy.policy import Policy

    narrowed = Policy(
        [v for v in truth.views if v.name != "V2"], name="minus-V2"
    )
    policies = {1: truth}
    gateway = EnforcementGateway(db, truth, GatewayConfig(cache_mode="none"))
    audits = []
    audit_lock = threading.Lock()
    gateway.decision_audit = lambda record: (
        audit_lock.acquire(),
        audits.append(record),
        audit_lock.release(),
    )
    stop = threading.Event()
    errors = []

    def traffic(uid):
        connection = gateway.connect(uid)
        try:
            while not stop.is_set():
                connection.query(
                    f"SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = 2"
                )
                try:
                    connection.query("SELECT * FROM Events WHERE EId = 2")
                except PolicyViolation:
                    pass
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=traffic, args=(uid,)) for uid in (1, 2, 3)]
    for thread in threads:
        thread.start()
    try:
        for version in range(2, 2 + reloads):
            with audit_lock:
                seen = len(audits)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with audit_lock:
                    if len(audits) >= seen + 4:
                        break
                time.sleep(0.002)
            policy = truth if version % 2 == 1 else narrowed
            policies[version] = policy
            hot_reload(gateway, policy, version=version)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
    gateway.close()
    assert not errors, errors

    checkers = {
        version: ComplianceChecker(db.schema, policy)
        for version, policy in policies.items()
    }
    torn = 0
    for record in audits:
        replica = _TraceReplica()
        replica.apply([("add", fact) for fact in record.facts])
        fresh = checkers[record.policy_version].check(
            db.parse(record.sql), record.bindings, replica
        )
        if fresh.allowed != record.allowed:
            torn += 1
    return [(len(audits), reloads, torn)], torn


def test_e17_compile(benchmark, capsys):
    decisions = 120 if QUICK else 600
    checks = 100 if QUICK else 400
    requests = 60 if QUICK else 240
    reloads = 3 if QUICK else 6

    agreement, disagreements = agreement_rows(decisions)
    coverage = coverage_rows(checks)
    miss_heavy, gateway_speedup = miss_heavy_rows(requests)
    rebuild = rebuild_rows()
    reload_table, torn = reload_under_load(reloads)

    # The measured pass for the benchmark fixture: one compiled-template hit.
    schema = calendar_app.make_schema()
    policy = calendar_app.ground_truth_policy()
    checker = ComplianceChecker(
        schema, policy, compiled=compile_policy(schema, policy)
    )
    stmt = bind_parameters(
        parse_select("SELECT EId FROM Attendance WHERE UId = ?"), [1]
    )
    checker.check(stmt, {"MyUId": 1})  # derive the template

    def compiled_hit():
        checker.check(stmt, {"MyUId": 1})

    benchmark.pedantic(compiled_hit, rounds=5, iterations=20)

    with capsys.disabled():
        print_table(
            "E17a",
            "replayed decision agreement, compiled vs template-free (calendar)",
            ["decisions", "compiled hits", "hit rate", "templates", "blocks", "disagreements"],
            agreement,
        )
        print_table(
            "E17b",
            "throughput vs skeleton coverage (calendar checks, cache off)",
            ["shapes", "checks", "generic /s", "compiled /s", "speedup", "hit rate"],
            coverage,
        )
        print_table(
            "E17c",
            "E13 miss-heavy gateway workload, compiled off vs on (social, cache off)",
            ["compiled", "cores", "requests", "req/s", "speedup", "compiled hits", "misses", "batched"],
            miss_heavy,
        )
        print_table(
            "E17d",
            "epoch rebuild cost (hot reloads of the calendar policy)",
            ["version", "build ms", "compile ms", "swap pause µs", "drained"],
            rebuild,
        )
        print_table(
            "E17e",
            "hot reload under load on the compiled+batched path",
            ["decisions audited", "reloads", "torn"],
            reload_table,
        )
        best = max(row[4] for row in coverage)
        print(
            f"\nbest compiled speedup (repeated-skeleton stream): {best:.2f}x;"
            f" miss-heavy gateway speedup: {gateway_speedup:.2f}x"
        )

    # Soundness: zero disagreements across every replayed decision, zero
    # torn decisions across every reload.
    assert disagreements == [], disagreements[:5]
    assert torn == 0
    # The fast path must actually pay on skeleton-repetitive streams.
    best = max(row[4] for row in coverage)
    assert best > 1.5, coverage
    # Rebuilds pay compilation pre-swap; the pause must stay tiny.
    for _, _, _, pause_us, drained in rebuild:
        assert pause_us < 50_000, rebuild
    # The ≥5x target is asserted only on the full run on real hardware;
    # the quick CI run records the measured ratio without gating on it
    # (see docs/performance.md for the analysis of where the time goes).
    if not QUICK and (os.cpu_count() or 1) >= 4:
        assert best >= 5.0 or gateway_speedup >= 5.0, (best, gateway_speedup)
