"""E18 — Shaving the hit path: prepared handles, stripes, pipelining.

Three questions about the PR-9 fast path (``repro.sqlir.prepared``, the
striped :class:`SharedDecisionCache`, the pipelined wire protocol):

1. **E18a — where the microseconds go.** The per-request hit path is
   parse → bind+skeletonize → cache probe → wire round trip. The
   prepared path hoists the first stage entirely (paid once at
   PREPARE), replaces the second with slot substitution, hands the
   third a precomputed skeleton, and amortizes the fourth across a
   pipeline window. The table shows µs/op per stage, classic vs
   prepared, plus the one-time plan-construction cost being amortized.

2. **E18b — single-connection cached-hit throughput.** One client, one
   TCP connection, one hot statement shape that is a shared-cache hit:
   classic sequential QUERY round trips vs pipelined EXECUTE. The
   acceptance bar is >= 2x decisions/s on a single core.

3. **E18c — decision fidelity across a hot reload.** The same >= 500
   statement calendar stream replayed twice over the wire — classic
   QUERY-per-statement and prepared/pipelined — with a policy hot
   reload fired mid-replay on both. Every (sql, bindings, allow/block,
   rows) outcome must agree, and the prepared replay must actually
   cross the reload on stale handles (re-prepares observed), not dodge
   it.

``E18_QUICK=1`` shrinks sizes for the CI perf-smoke leg. Marked
``slow``.
"""

import os
import random
import time

import pytest

from repro.bench.harness import print_table
from repro.enforce.cache import DecisionCache
from repro.enforce.decision import PolicyViolation
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.lifecycle import LifecycleManager
from repro.net import (
    AdminClient,
    BackgroundServer,
    NetClientConnection,
    ServerConfig,
)
from repro.policy import policy_to_text
from repro.serve import EnforcementGateway, GatewayConfig
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_sql
from repro.sqlir.prepared import prepare_plan
from repro.sqlir.skeleton import skeletonize
from repro.workloads import calendar_app

pytestmark = pytest.mark.slow

QUICK = os.environ.get("E18_QUICK", "") not in ("", "0")

#: The hot shape every leg hammers: session-local (V1), so it is a
#: shared-cache hit independent of trace history.
HOT_SHAPE = "SELECT EId FROM Attendance WHERE UId = ?"


def make_gateway(**config) -> EnforcementGateway:
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.make_app().ground_truth_policy()
    return EnforcementGateway(db, policy, GatewayConfig(**config))


def stage_us(fn, iters: int) -> float:
    fn()  # warm once outside the measured pass
    started = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - started) / iters * 1e6


# --------------------------------------------------------------------------
# E18a — per-stage hit-path breakdown
# --------------------------------------------------------------------------


def stage_breakdown(iters: int):
    statement = parse_sql(HOT_SHAPE)
    plan = prepare_plan(statement, HOT_SHAPE)
    args = [1]

    parse_classic = stage_us(lambda: parse_sql(HOT_SHAPE), iters)
    prepare_once = stage_us(
        lambda: prepare_plan(parse_sql(HOT_SHAPE), HOT_SHAPE), max(iters // 4, 50)
    )

    skel_classic = stage_us(
        lambda: skeletonize(bind_parameters(statement, args)), iters
    )
    skel_prepared = stage_us(lambda: plan.skeleton_for(args), iters)

    # Cache probe: one gateway-shaped DecisionCache holding the template
    # the hot shape matches; classic probes re-skeletonize per lookup,
    # the prepared probe hands the precomputed skeleton + sorted session
    # bindings in.
    from repro.enforce.proxy import EnforcementProxy, ProxyConfig, Session

    policy = calendar_app.make_app().ground_truth_policy()
    db = calendar_app.make_database(size=8, seed=3)
    session = Session.for_user(1)
    cache = DecisionCache(policy)
    proxy = EnforcementProxy(db, policy, session, ProxyConfig(cache=cache))
    proxy.sql(HOT_SHAPE, args)  # derive + store the template
    bound = bind_parameters(statement, args)
    bindings = session.bindings
    param_items = sorted(bindings.items())
    trace = Trace()
    assert cache.lookup(bound, bindings, trace) is not None, "probe must hit"
    probe_classic = stage_us(lambda: cache.lookup(bound, bindings, trace), iters)
    skeleton = plan.skeleton_for(args)
    probe_prepared = stage_us(
        lambda: cache.lookup(
            bound, bindings, trace, skeleton=skeleton, param_items=param_items
        ),
        iters,
    )

    rows = [
        ("parse", round(parse_classic, 2), 0.0, "hoisted into PREPARE"),
        ("bind+skeletonize", round(skel_classic, 2), round(skel_prepared, 2),
         "slot substitution"),
        ("cache probe", round(probe_classic, 2), round(probe_prepared, 2),
         "skeleton handed in"),
        ("prepare (one-time)", "-", round(prepare_once, 2), "amortized over executes"),
    ]
    return rows, {
        "parse": parse_classic,
        "skel": (skel_classic, skel_prepared),
        "probe": (probe_classic, probe_prepared),
    }


# --------------------------------------------------------------------------
# E18b — single-connection cached-hit throughput, classic vs pipelined
# --------------------------------------------------------------------------


def wire_throughput(n_requests: int, window: int = 64):
    background = BackgroundServer(make_gateway(), ServerConfig(port=0)).start()
    try:
        connection = NetClientConnection(background.host, background.port, user=1)
        for _ in range(20):  # warm: template derived, shared-cache hot
            connection.query(HOT_SHAPE, [1])

        started = time.perf_counter()
        for _ in range(n_requests):
            connection.query(HOT_SHAPE, [1])
        classic_s = time.perf_counter() - started

        prepared = connection.prepare(HOT_SHAPE)
        connection.pipeline([(prepared, [1])] * 20, window=window)
        started = time.perf_counter()
        outcomes = connection.pipeline(
            [(prepared, [1])] * n_requests, window=window
        )
        pipelined_s = time.perf_counter() - started
        assert all(isinstance(outcome, Result) for outcome in outcomes)
        connection.close()
    finally:
        background.stop()
    return {
        "classic_us": classic_s / n_requests * 1e6,
        "pipelined_us": pipelined_s / n_requests * 1e6,
        "classic_rps": n_requests / classic_s,
        "pipelined_rps": n_requests / pipelined_s,
        "speedup": classic_s / pipelined_s,
    }


# --------------------------------------------------------------------------
# E18c — prepared/pipelined vs classic fidelity across a hot reload
# --------------------------------------------------------------------------

#: Mixed stream: probes that certify facts (events 2 and 5 are user 1's;
#: 99 is nobody's), history-dependent Events reads whose allow/block
#: depends on exactly which probes ran *before them in the session* —
#: the shapes where an ordering bug in the pipelined path would show up
#: as a decision flip — plus always-blocked other-user reads. The value
#: ranges are deliberately narrow: checker cost grows steeply with
#: certified trace facts, so realistic replay means short sessions over
#: a small hot set, not one endless session (the stock workload streams
#: are built the same way).
SHAPE_POOL = [
    ("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
     lambda rng: [1, rng.choice((2, 5, 99))]),
    ("SELECT * FROM Events WHERE EId = ?", lambda rng: [rng.choice((2, 5, 7, 9))]),
    ("SELECT Title, Loc FROM Events WHERE EId = ?",
     lambda rng: [rng.choice((2, 5, 7, 9))]),
    ("SELECT Name FROM Users WHERE UId = ?", lambda rng: [rng.randint(1, 4)]),
    (HOT_SHAPE, lambda rng: [rng.randint(2, 4)]),
]

#: Statements per session (one fresh wire session per segment) and the
#: pipeline chunk size — two chunks per session, so the mid-replay
#: reload can land *between* a session's chunks, while its prepared
#: handles are live.
SESSION_LEN = 12
CHUNK = SESSION_LEN // 2


def statement_stream(n: int, seed: int = 18):
    rng = random.Random(seed)
    stream = []
    for _ in range(n):
        sql, gen = SHAPE_POOL[rng.randrange(len(SHAPE_POOL))]
        stream.append((sql, gen(rng)))
    return stream


def lifecycle_server() -> BackgroundServer:
    gateway = make_gateway()
    lifecycle = LifecycleManager(gateway)
    return BackgroundServer(
        gateway, ServerConfig(port=0), lifecycle=lifecycle
    ).start()


def fire_reload(background: BackgroundServer) -> None:
    # Same policy text, new version: semantics identical on both paths,
    # but every prepared handle goes stale and must re-prepare.
    text = policy_to_text(calendar_app.make_app().ground_truth_policy())
    with AdminClient(background.host, background.port, timeout_s=30.0) as operator:
        operator.reload(text, provenance="patched", label="e18-midstream")


def outcome_key(sql, args, outcome):
    if isinstance(outcome, Result):
        return (sql, tuple(args), "ok", tuple(sorted(outcome.rows)))
    if isinstance(outcome, PolicyViolation):
        return (sql, tuple(args), "blocked", None)
    return (sql, tuple(args), "error", repr(outcome))


def run_classic(stream, reload_at: int):
    background = lifecycle_server()
    try:
        outcomes = []
        for start in range(0, len(stream), SESSION_LEN):
            connection = NetClientConnection(
                background.host, background.port, user=1, fresh=True
            )
            for offset, (sql, args) in enumerate(stream[start:start + SESSION_LEN]):
                if start + offset == reload_at:
                    fire_reload(background)
                try:
                    outcomes.append(
                        outcome_key(sql, args, connection.query(sql, args))
                    )
                except PolicyViolation as blocked:
                    outcomes.append(outcome_key(sql, args, blocked))
            connection.close()
        version = background.server.gateway.policy_version
    finally:
        background.stop()
    return outcomes, version


def run_prepared(stream, reload_at: int):
    shapes = [sql for sql, _ in SHAPE_POOL]
    background = lifecycle_server()
    try:
        outcomes = []
        for start in range(0, len(stream), SESSION_LEN):
            connection = NetClientConnection(
                background.host, background.port, user=1, fresh=True
            )
            # Handles are prepared at session start; the mid-replay
            # reload lands between this session's chunks, so they are
            # stale for the second chunk and must transparently
            # re-prepare.
            plans = {sql: connection.prepare(sql) for sql in shapes}
            for chunk_start in range(start, start + SESSION_LEN, CHUNK):
                if chunk_start == reload_at:
                    fire_reload(background)
                batch = stream[chunk_start:min(chunk_start + CHUNK, len(stream))]
                replies = connection.pipeline(
                    [(plans[sql], args) for sql, args in batch]
                )
                outcomes.extend(
                    outcome_key(sql, args, reply)
                    for (sql, args), reply in zip(batch, replies)
                )
            connection.close()
        prepares = background.server.metrics.counter("statements_prepared")
        stale_refusals = background.server.metrics.counter("prepared_stale")
        sessions = (len(stream) + SESSION_LEN - 1) // SESSION_LEN
        version = background.server.gateway.policy_version
    finally:
        background.stop()
    return outcomes, version, prepares - sessions * len(shapes), stale_refusals


def fidelity(n_statements: int):
    # The reload fires between the middle session's two pipeline chunks:
    # that session prepared its handles before the swap and pipelines
    # EXECUTEs after it, so the stale path is crossed by construction.
    # Both replays swap at exactly the same statement index.
    sessions = n_statements // SESSION_LEN
    reload_at = (sessions // 2) * SESSION_LEN + CHUNK
    stream = statement_stream(n_statements)
    classic, classic_version = run_classic(stream, reload_at)
    prepared, prepared_version, reprepares, stale = run_prepared(stream, reload_at)
    disagreements = sum(1 for a, b in zip(classic, prepared) if a != b)
    rows = [
        ("classic QUERY", n_statements,
         sum(1 for key in classic if key[2] == "ok"),
         sum(1 for key in classic if key[2] == "blocked"),
         classic_version, "-", "-"),
        ("prepared+pipelined", n_statements,
         sum(1 for key in prepared if key[2] == "ok"),
         sum(1 for key in prepared if key[2] == "blocked"),
         prepared_version, reprepares, stale),
    ]
    return rows, disagreements, reprepares, stale, classic, prepared


# --------------------------------------------------------------------------


def test_e18_hitpath(benchmark, capsys):
    stage_iters = 500 if QUICK else 4000
    wire_requests = 400 if QUICK else 2000
    replay_n = 520 if QUICK else 1200

    stage_rows, stages = stage_breakdown(stage_iters)
    wire = wire_throughput(wire_requests)
    stage_rows.append(
        ("wire round trip", round(wire["classic_us"], 2),
         round(wire["pipelined_us"], 2), "pipelined, window=64")
    )
    fidelity_rows, disagreements, reprepares, stale, classic, prepared = fidelity(
        replay_n
    )

    # The measured pass for the benchmark fixture: one prepared EXECUTE
    # round trip on a warm connection.
    with BackgroundServer(make_gateway(), ServerConfig(port=0)) as background:
        connection = NetClientConnection(background.host, background.port, user=1)
        handle = connection.prepare(HOT_SHAPE)
        connection.execute(handle, [1])
        benchmark.pedantic(
            lambda: connection.execute(handle, [1]), rounds=20, iterations=5
        )
        connection.close()

    with capsys.disabled():
        print_table(
            "E18a",
            "hit-path budget per stage (microseconds per op)",
            ["stage", "classic us", "prepared us", "note"],
            stage_rows,
        )
        print_table(
            "E18b",
            "single-connection cached-hit throughput",
            ["mode", "requests", "us/req", "req/s", "speedup"],
            [
                ("classic sequential", wire_requests,
                 round(wire["classic_us"], 1), round(wire["classic_rps"]), 1.0),
                ("pipelined prepared", wire_requests,
                 round(wire["pipelined_us"], 1), round(wire["pipelined_rps"]),
                 round(wire["speedup"], 2)),
            ],
        )
        print_table(
            "E18c",
            "replayed decisions across a hot reload, classic vs prepared",
            ["path", "decisions", "ok", "blocked", "policy version",
             "re-prepares", "stale refusals"],
            fidelity_rows,
        )
        print(f"E18c disagreements: {disagreements}")

    # E18a: the prepared path strictly shrinks every per-request stage.
    assert stages["skel"][1] < stages["skel"][0]
    assert stages["probe"][1] < stages["probe"][0]
    # E18b: the acceptance bar — >= 2x cached-hit decision throughput on
    # one connection.
    assert wire["speedup"] >= 2.0, f"pipelined speedup {wire['speedup']:.2f} < 2x"
    # E18c: >= 500 replayed decisions, zero (sql, bindings, allow/block)
    # disagreements, and the reload really crossed the prepared path.
    assert len(classic) == len(prepared) >= 500
    assert disagreements == 0
    assert reprepares > 0 and stale > 0
    assert not any(key[2] == "error" for key in prepared)
