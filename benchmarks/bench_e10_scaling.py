"""E10 — Scalability of the diagnosis machinery (§5.2, figures).

Two series:

* maximally-contained-rewriting time for a fixed blocked query as the
  number of policy views grows (synthetic view families appended to the
  social policy);
* compliance-check time as the session trace grows (the fact-selection
  heuristic keeps the conjoined set small, so the curve should stay
  near-flat).
"""

import time

from repro.bench.harness import print_figure_series
from repro.diagnose.rewrite import narrowing_patches
from repro.enforce import EnforcementProxy, Session
from repro.policy import Policy, View
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select

from conftest import fresh_app

VIEW_COUNTS = [2, 4, 8, 16, 32]
TRACE_LENGTHS = [0, 10, 25, 50, 100]


def synthetic_policy(schema, count):
    """The two core social views plus ``count - 2`` decoy selections."""
    views = [
        View("Vown", "SELECT * FROM Posts WHERE Author = ?MyUId", schema),
        View("Vpublic", "SELECT * FROM Posts WHERE Visibility = 'public'", schema),
    ]
    for index in range(count - 2):
        views.append(
            View(
                f"Vdecoy{index}",
                f"SELECT PId, Author FROM Posts WHERE PId = {1000 + index}",
                schema,
                "synthetic decoy",
            )
        )
    return Policy(views, name=f"synthetic-{count}")


def rewriting_scaling():
    app, db = fresh_app("social", size=10)
    schema = db.schema
    query = translate_select(
        parse_select("SELECT Content FROM Posts WHERE PId = 3"), schema
    ).disjuncts[0]
    times = []
    patch_counts = []
    for count in VIEW_COUNTS:
        policy = synthetic_policy(schema, count)
        views = policy.view_defs({"MyUId": 1})
        started = time.perf_counter()
        patches = narrowing_patches(query, "q", views, schema)
        times.append(round((time.perf_counter() - started) * 1e3, 1))
        patch_counts.append(len(patches))
    return times, patch_counts


def trace_scaling():
    app, db = fresh_app("calendar", size=60)
    policy = app.ground_truth_policy()
    times = []
    uid = 1
    my_events = [
        row[0]
        for row in db.query("SELECT EId FROM Attendance WHERE UId = ?", [uid]).rows
    ]
    # Give user 1 plenty of events to accumulate history over.
    for eid in range(1, 101):
        if db.query(
            "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid]
        ).is_empty():
            try:
                db.sql("INSERT INTO Attendance VALUES (?, ?)", [uid, eid])
            except Exception:
                break
    proxy = EnforcementProxy(db, policy, Session.for_user(uid))
    served = 0
    for length in TRACE_LENGTHS:
        while served < length:
            eid = (served % 99) + 2  # fill the trace with other events
            proxy.query(
                "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid]
            )
            served += 1
        # The probe's own guard (event 1), then the measured detail fetch.
        proxy.query("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, 1])
        started = time.perf_counter()
        proxy.query("SELECT * FROM Events WHERE EId = ?", [1])
        times.append(round((time.perf_counter() - started) * 1e3, 2))
    return times


def test_e10_scaling(benchmark, capsys):
    app, db = fresh_app("social", size=10)
    schema = db.schema
    query = translate_select(
        parse_select("SELECT Content FROM Posts WHERE PId = 3"), schema
    ).disjuncts[0]
    policy = synthetic_policy(schema, 8)
    views = policy.view_defs({"MyUId": 1})

    def narrow():
        return narrowing_patches(query, "q", views, schema)

    benchmark(narrow)

    with capsys.disabled():
        times, patch_counts = rewriting_scaling()
        print_figure_series(
            "E10a",
            "maximally contained rewriting vs policy size (social)",
            "views",
            VIEW_COUNTS,
            {"ms": times, "patches": patch_counts},
        )
        trace_times = trace_scaling()
        print_figure_series(
            "E10b",
            "history-aware compliance check vs trace length (calendar)",
            "trace entries",
            TRACE_LENGTHS,
            {"decision ms": trace_times},
        )
