"""E12 — the network tier: wire overhead, overload shedding, graceful drain.

Three questions about ``repro.net`` fronting the enforcement gateway:

1. **Fidelity & overhead** — replaying each workload through
   :class:`NetClientConnection` over a loopback socket must reach
   *identical* enforcement outcomes (completed / blocked / aborted) to
   the in-process gateway; how much throughput does the wire cost?

2. **Overload** — with a small in-flight bound and a slow (fault-
   injected) execute stage, admission control must shed excess load with
   structured ``ERROR/overloaded`` replies *immediately*, so the p50
   latency of *admitted* requests stays within 2x the unloaded p50
   instead of collapsing under a queue.

3. **Drain** — stopping the server with statements in flight must
   deliver every outstanding reply: zero dropped requests.

Marked ``slow``: real sockets, deliberate execute delays.
"""

import random
import statistics
import threading
import time

import pytest

from repro.bench.harness import print_table
from repro.net import BackgroundServer, NetClientConnection, NetGatewayClient, ServerConfig
from repro.net.protocol import ERR_OVERLOADED, NetError
from repro.serve import EnforcementGateway, GatewayConfig, WorkloadDriver

from conftest import fresh_app

pytestmark = pytest.mark.slow


def make_gateway(app_name: str, users: int):
    app, db = fresh_app(app_name, size=users)
    policy = app.ground_truth_policy()
    return app, db, EnforcementGateway(db, policy, GatewayConfig())


# -- E12a: wire vs in-process ------------------------------------------------------


def replay_pair(app_name: str, users: int, requests: int, workers: int, seed: int = 12):
    """Run the same stream in-process and over the wire; return both reports."""
    app, db, gateway = make_gateway(app_name, users)
    stream = app.request_stream(db, random.Random(seed), requests)
    inproc = WorkloadDriver(app, gateway, workers=workers).run(stream)

    app2, db2, gateway2 = make_gateway(app_name, users)
    stream2 = app2.request_stream(db2, random.Random(seed), requests)
    with BackgroundServer(gateway2, ServerConfig(port=0)) as background:
        client = NetGatewayClient(background.host, background.port, db=db2)
        with client:
            wire = WorkloadDriver(app2, client, workers=workers).run(stream2)
    return inproc, wire


def request_p50_us(report) -> float:
    return report.metrics.stages.get("request", {}).get("p50_us", 0.0)


def fidelity_rows():
    rows = []
    for app_name in ("calendar", "hospital", "employees", "social"):
        inproc, wire = replay_pair(app_name, users=16, requests=120, workers=4)
        identical = (inproc.completed, inproc.blocked, inproc.aborted) == (
            wire.completed,
            wire.blocked,
            wire.aborted,
        )
        rows.append(
            (
                app_name,
                inproc.requests,
                f"{inproc.completed}/{inproc.blocked}/{inproc.aborted}",
                f"{wire.completed}/{wire.blocked}/{wire.aborted}",
                identical,
                round(inproc.throughput_rps),
                round(wire.throughput_rps),
                round(request_p50_us(inproc)),
                round(request_p50_us(wire)),
            )
        )
    return rows


# -- E12b: overload shedding -------------------------------------------------------

EXECUTE_DELAY_S = 0.02
OVERLOAD_CLIENTS = 8
ADMITTED_TARGET = 12


def overload_rows():
    app, db, gateway = make_gateway("calendar", users=OVERLOAD_CLIENTS + 2)
    config = ServerConfig(
        port=0,
        max_in_flight=2,
        worker_threads=4,
        execute_delay_s=EXECUTE_DELAY_S,
    )
    rows = []
    with BackgroundServer(gateway, config) as background:
        # Unloaded baseline: one client, sequential requests, no contention.
        client = NetClientConnection(background.host, background.port, user=1)
        unloaded: list[float] = []
        for _ in range(30):
            started = time.perf_counter()
            client.query("SELECT EId FROM Attendance WHERE UId = ?", [1])
            unloaded.append(time.perf_counter() - started)
        client.close()
        unloaded_p50 = statistics.median(unloaded)

        # Overload: many concurrent principals against an in-flight bound
        # of 2. Excess statements get ERROR/overloaded immediately; each
        # client keeps going until it has ADMITTED_TARGET admitted answers.
        admitted: list[float] = []
        shed_latencies: list[float] = []
        shed = 0
        lock = threading.Lock()
        barrier = threading.Barrier(OVERLOAD_CLIENTS)
        errors: list[BaseException] = []

        def hammer(uid: int) -> None:
            nonlocal shed
            try:
                connection = NetClientConnection(
                    background.host, background.port, user=uid
                )
                barrier.wait()
                ok, attempts = 0, 0
                while ok < ADMITTED_TARGET and attempts < 400:
                    attempts += 1
                    started = time.perf_counter()
                    try:
                        connection.query(
                            "SELECT EId FROM Attendance WHERE UId = ?", [uid]
                        )
                    except NetError as exc:
                        if exc.code != ERR_OVERLOADED:
                            raise
                        with lock:
                            shed += 1
                            shed_latencies.append(time.perf_counter() - started)
                        continue
                    ok += 1
                    with lock:
                        admitted.append(time.perf_counter() - started)
                connection.close()
            except BaseException as exc:  # noqa: BLE001 - surfaced by the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(uid,))
            for uid in range(1, OVERLOAD_CLIENTS + 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        stats = NetGatewayClient(background.host, background.port).remote_stats()

    admitted_p50 = statistics.median(admitted)
    rows.append(
        (
            "unloaded",
            1,
            len(unloaded),
            0,
            round(unloaded_p50 * 1e3, 2),
            round(max(unloaded) * 1e3, 2),
        )
    )
    rows.append(
        (
            "overloaded",
            OVERLOAD_CLIENTS,
            len(admitted),
            shed,
            round(admitted_p50 * 1e3, 2),
            round(max(admitted) * 1e3, 2),
        )
    )
    shed_p50_ms = round(statistics.median(shed_latencies) * 1e3, 2) if shed else 0.0
    server_shed = stats["net"]["counters"].get("requests_shed", 0)
    return rows, unloaded_p50, admitted_p50, shed, shed_p50_ms, server_shed


# -- E12c: graceful drain ----------------------------------------------------------

DRAIN_IN_FLIGHT = 6


def drain_rows():
    app, db, gateway = make_gateway("calendar", users=DRAIN_IN_FLIGHT + 2)
    config = ServerConfig(
        port=0,
        max_in_flight=16,
        worker_threads=8,
        execute_delay_s=0.15,
        drain_grace_s=5.0,
    )
    background = BackgroundServer(gateway, config).start()
    replies: list[object] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    clients = [
        NetClientConnection(background.host, background.port, user=uid)
        for uid in range(1, DRAIN_IN_FLIGHT + 1)
    ]

    def one_statement(connection: NetClientConnection, uid: int) -> None:
        try:
            result = connection.query("SELECT EId FROM Attendance WHERE UId = ?", [uid])
            with lock:
                replies.append(result)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=one_statement, args=(connection, uid))
        for uid, connection in enumerate(clients, start=1)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.05)  # let every statement reach the executor
    started = time.perf_counter()
    background.stop()  # graceful drain: finish in-flight, then close
    drain_seconds = time.perf_counter() - started
    for thread in threads:
        thread.join()
    for connection in clients:
        connection.close()

    drained = background.server.metrics.counter("drained_connections")
    row = (
        DRAIN_IN_FLIGHT,
        len(replies),
        len(errors),
        drained,
        round(drain_seconds * 1e3, 1),
    )
    return [row], replies, errors


# -- the experiment ----------------------------------------------------------------


def test_e12_net(benchmark, capsys):
    fidelity = fidelity_rows()
    overload, unloaded_p50, admitted_p50, shed, shed_p50_ms, server_shed = (
        overload_rows()
    )
    drain, drain_replies, drain_errors = drain_rows()

    # The measured pass: a warmed single-session query round-trip over
    # the wire (protocol + socket + dispatch overhead on a cache hit).
    app, db, gateway = make_gateway("calendar", users=8)
    with BackgroundServer(gateway, ServerConfig(port=0)) as background:
        client = NetClientConnection(background.host, background.port, user=1)
        client.query("SELECT EId FROM Attendance WHERE UId = 1")  # warm

        def roundtrip():
            client.query("SELECT EId FROM Attendance WHERE UId = 1")

        benchmark.pedantic(roundtrip, rounds=5, iterations=50)
        client.close()

    with capsys.disabled():
        print_table(
            "E12a",
            "wire vs in-process gateway (16 users, 120 requests, 4 workers)",
            [
                "app",
                "requests",
                "inproc c/b/a",
                "wire c/b/a",
                "identical",
                "inproc req/s",
                "wire req/s",
                "inproc p50 µs",
                "wire p50 µs",
            ],
            fidelity,
        )
        print_table(
            "E12b",
            f"overload shedding (in-flight bound 2, {EXECUTE_DELAY_S * 1e3:.0f} ms"
            " execute delay)",
            ["scenario", "clients", "admitted", "shed", "p50 ms", "max ms"],
            overload,
        )
        print(
            f"shed replies: {shed} client-side / {server_shed} server-side,"
            f" p50 {shed_p50_ms} ms (vs {EXECUTE_DELAY_S * 1e3:.0f} ms execute)"
        )
        print_table(
            "E12c",
            "graceful drain with statements in flight (0.15 s execute delay)",
            ["in flight", "replies", "dropped", "drained conns", "drain ms"],
            drain,
        )

    # (a) the wire changes nothing about enforcement.
    assert all(row[4] for row in fidelity), fidelity
    # (b) overload sheds rather than queues: sheds happened, every shed
    # answered fast, and admitted latency stayed within 2x unloaded.
    assert shed > 0 and server_shed >= shed
    assert shed_p50_ms < EXECUTE_DELAY_S * 1e3
    assert admitted_p50 <= 2 * unloaded_p50, (admitted_p50, unloaded_p50)
    # (c) drain dropped nothing.
    assert not drain_errors, drain_errors
    assert len(drain_replies) == DRAIN_IN_FLIGHT
