"""E6 — Ablation of the §3.2.2 generalization controls (table).

The paper proposes three controls against over/under-generalization:
a policy-size budget, opaque-identifier hints, and active constraint
discovery. Each row disables one control in a scenario constructed to
need it; the quality drop (or policy blow-up) quantifies the control's
contribution.
"""

from repro.bench.harness import print_table
from repro.extract.miner import MinerConfig, TraceMiner
from repro.policy.compare import compare_policies
from repro.workloads.runner import Request

from conftest import OPAQUE_HINTS, fresh_app


def scenario_sparse_traces():
    """One trace per handler: singleton constants everywhere — the hints
    control must generalize them."""
    app, db = fresh_app("calendar", size=14, seed=5)
    uid, eid = db.query("SELECT UId, EId FROM Attendance").first()
    requests = [
        Request("show_event", {"event_id": eid}, {"user_id": uid}),
        Request("my_profile", {}, {"user_id": uid}),
    ]
    return app, db, requests


def scenario_single_attendance():
    """A user with exactly one attended event: only the active probe can
    tell the data-derived event id from a code constant."""
    app, db = fresh_app("calendar", size=14, seed=5)
    db.sql("INSERT INTO Users VALUES (100, 'solo')")
    db.sql("INSERT INTO Attendance VALUES (100, 3)")
    return app, db, [Request("my_events", {}, {"user_id": 100})]


def scenario_budget_pressure():
    """Sparse traces with hints off: only budget pressure forces the
    per-event constants to generalize ("insist the policy be small",
    §3.2.2's first control)."""
    return scenario_sparse_traces()


def run(app, db, requests, config):
    miner = TraceMiner(app, db, config)
    policy = miner.mine(requests)
    comparison = compare_policies(policy, app.ground_truth_policy())
    return policy, comparison, miner.report


def ablation_rows():
    hints = OPAQUE_HINTS["calendar"]
    rows = []

    app, db, requests = scenario_sparse_traces()
    full = run(app, db, requests, MinerConfig(opaque_columns=hints))
    no_hints = run(app, db, requests, MinerConfig(opaque_columns=frozenset()))
    rows.append(
        (
            "sparse traces",
            "full config",
            len(full[0]),
            f"{full[1].precision:.2f}",
            f"{full[1].recall:.2f}",
        )
    )
    rows.append(
        (
            "sparse traces",
            "hints OFF",
            len(no_hints[0]),
            f"{no_hints[1].precision:.2f}",
            f"{no_hints[1].recall:.2f}",
        )
    )

    app, db, requests = scenario_single_attendance()
    active = run(
        app, db, requests, MinerConfig(opaque_columns=frozenset(), active_discovery=True)
    )
    passive = run(
        app,
        db,
        requests,
        MinerConfig(opaque_columns=frozenset(), active_discovery=False),
    )
    rows.append(
        (
            "single attendance",
            "active ON",
            len(active[0]),
            f"{active[1].precision:.2f}",
            f"{active[1].recall:.2f}",
        )
    )
    rows.append(
        (
            "single attendance",
            "active OFF",
            len(passive[0]),
            f"{passive[1].precision:.2f}",
            f"{passive[1].recall:.2f}",
        )
    )

    app, db, requests = scenario_budget_pressure()
    unbudgeted = run(
        app,
        db,
        requests,
        MinerConfig(opaque_columns=frozenset(), active_discovery=False, size_budget=None),
    )
    budgeted = run(
        app,
        db,
        requests,
        MinerConfig(opaque_columns=frozenset(), active_discovery=False, size_budget=2),
    )
    rows.append(
        (
            "sparse, hints OFF",
            "budget OFF",
            len(unbudgeted[0]),
            f"{unbudgeted[1].precision:.2f}",
            f"{unbudgeted[1].recall:.2f}",
        )
    )
    rows.append(
        (
            "sparse, hints OFF",
            "budget = 2",
            len(budgeted[0]),
            f"{budgeted[1].precision:.2f}",
            f"{budgeted[1].recall:.2f}",
        )
    )
    return rows


def test_e6_mining_ablation(benchmark, capsys):
    app, db, requests = scenario_single_attendance()

    def active_run():
        return run(
            app,
            db,
            requests,
            MinerConfig(opaque_columns=frozenset(), active_discovery=True),
        )

    policy, comparison, _ = benchmark.pedantic(active_run, rounds=10, iterations=1)
    assert comparison.precision == 1.0

    with capsys.disabled():
        print_table(
            "E6",
            "ablating the three §3.2.2 generalization controls (calendar)",
            ["scenario", "config", "views", "precision", "recall"],
            ablation_rows(),
        )
