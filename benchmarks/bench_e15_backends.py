"""E15 — Pluggable backends: SQLite at scale behind the proxy.

The backend redesign's three claims, measured:

1. **E15a — decision agreement.** Enforcement is backend-independent:
   replaying the same calendar workload through two gateways — one on
   the in-memory backend, one on SQLite — must produce *identical*
   decision streams (same SQL, same bindings, same allow/block), and
   the attack-query battery must block on both. Zero disagreements is
   an acceptance criterion, not a target.

2. **E15b — cache hit vs real execution at 10^5–10^6 rows.** With a
   real engine underneath, the cost the decision cache avoids is no
   longer synthetic: at each scale we measure raw SQLite execution,
   the proxy's cache-hit path (execution + template lookup), and the
   uncached fresh check. The check cost is data-independent (it reasons
   over the schema and trace, never the rows), so its relative price
   falls as data grows — the paper's amortization argument, now with
   real I/O on the denominator.

3. **E15c — proxy overhead on a replayed workload.** End-to-end
   request throughput, direct SQLite vs enforced gateway, same request
   stream — the deployment-shaped overhead number.

``E15_QUICK=1`` shrinks sizes for CI smoke runs. Marked ``slow``.
"""

import os
import random
import statistics
import time

import pytest

from repro.bench.harness import print_table
from repro.enforce import DecisionCache, EnforcementProxy, ProxyConfig, Session
from repro.enforce.decision import PolicyViolation
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads.runner import AppRunner

from conftest import fresh_app

pytestmark = pytest.mark.slow

QUICK = os.environ.get("E15_QUICK", "") not in ("", "0")

#: Calendar data volume is ~6 rows per user (1 user + 2 events + ~3
#: attendances), so these user counts land at ~1.2e4 / ~1e5 / ~1e6 rows.
SCALE_SIZES = [2_000] if QUICK else [17_000, 167_000]
AGREEMENT_SIZE = 8 if QUICK else 30
AGREEMENT_REQUESTS = 60 if QUICK else 400
LATENCY_REPS = 30 if QUICK else 200
THROUGHPUT_REQUESTS = 80 if QUICK else 500


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


# --------------------------------------------------------------------------
# E15a — zero decision disagreements between backends
# --------------------------------------------------------------------------


def replay_with_audit(backend: str, requests):
    """Run the stream through a gateway on ``backend``; return the audit."""
    app, db = fresh_app("calendar", size=AGREEMENT_SIZE, seed=3, backend=backend)
    gateway = EnforcementGateway(
        db, app.ground_truth_policy(), GatewayConfig(backend=backend)
    )
    audit = []
    gateway.decision_audit = lambda record: audit.append(
        (record.sql, tuple(sorted(record.bindings.items())), record.allowed)
    )
    runner = AppRunner(app, db, mode="gateway", gateway=gateway)
    outcomes = runner.run_all(requests)
    gateway.close()
    db.close()
    return audit, outcomes


def test_e15a_backends_agree_on_replayed_decisions():
    app, db = fresh_app("calendar", size=AGREEMENT_SIZE, seed=3)
    requests = app.request_stream(db, random.Random(5), AGREEMENT_REQUESTS)
    db.close()

    memory_audit, memory_outcomes = replay_with_audit("memory", requests)
    sqlite_audit, sqlite_outcomes = replay_with_audit("sqlite", requests)

    assert len(memory_audit) == len(sqlite_audit)
    disagreements = [
        (m, s) for m, s in zip(memory_audit, sqlite_audit) if m != s
    ]
    blocked = sum(1 for record in memory_audit if not record[2])
    print_table(
        "E15a",
        "decision agreement, memory vs sqlite (replayed calendar workload)",
        ["backend", "requests", "decisions", "blocked", "disagreements"],
        [
            ["memory", len(memory_outcomes), len(memory_audit), blocked, 0],
            [
                "sqlite",
                len(sqlite_outcomes),
                len(sqlite_audit),
                sum(1 for record in sqlite_audit if not record[2]),
                len(disagreements),
            ],
        ],
    )
    assert disagreements == []
    assert [o.blocked for o in memory_outcomes] == [o.blocked for o in sqlite_outcomes]


def test_e15a_attack_queries_block_on_both_backends():
    for backend in ("memory", "sqlite"):
        app, db = fresh_app("calendar", size=AGREEMENT_SIZE, seed=3, backend=backend)
        proxy = EnforcementProxy(db, app.ground_truth_policy(), Session.for_user(1))
        for sql, args in app.attack_queries(db, 1):
            with pytest.raises(PolicyViolation):
                proxy.query(sql, args)
        db.close()


# --------------------------------------------------------------------------
# E15b — cache hit vs execution cost at scale (sqlite)
# --------------------------------------------------------------------------


def build_scaled_sqlite(size: int):
    app, db = fresh_app("calendar", size=size, seed=3, backend="sqlite")
    return app, db


def time_us(fn, reps: int) -> list[float]:
    samples = []
    for _ in range(reps):
        started = time.perf_counter_ns()
        fn()
        samples.append((time.perf_counter_ns() - started) / 1_000)
    return samples


@pytest.mark.parametrize("size", SCALE_SIZES)
def test_e15b_cache_hit_vs_execution_curves(size):
    app, db = build_scaled_sqlite(size)
    policy = app.ground_truth_policy()
    total = db.total_rows()
    probe = "SELECT EId FROM Attendance WHERE UId = ?"
    uid = 1

    raw = time_us(lambda: db.query(probe, [uid]), LATENCY_REPS)

    # Cache-hit path: warm the template once, then every query pays
    # execution + a cache lookup.
    cached = EnforcementProxy(
        db, policy, Session.for_user(uid), ProxyConfig(cache=DecisionCache(policy))
    )
    cached.query(probe, [uid])
    hit = time_us(lambda: cached.query(probe, [uid]), LATENCY_REPS)
    assert cached.stats.cache_hits >= LATENCY_REPS

    # Fresh-check path: no cache, every query pays the full compliance
    # check. The check reasons over schema + trace only, so this cost is
    # flat across scales while raw execution grows.
    uncached = EnforcementProxy(db, policy, Session.for_user(uid), ProxyConfig())
    miss = time_us(lambda: uncached.query(probe, [uid]), LATENCY_REPS)

    raw_p50 = statistics.median(raw)
    hit_p50 = statistics.median(hit)
    miss_p50 = statistics.median(miss)
    print_table(
        f"E15b_{size}",
        f"sqlite backend, {total} rows: cache hit vs execution (us, p50/p95)",
        ["path", "p50_us", "p95_us", "x_raw_p50"],
        [
            ["raw sqlite", raw_p50, _percentile(raw, 0.95), 1.0],
            ["proxy cache-hit", hit_p50, _percentile(hit, 0.95), hit_p50 / raw_p50],
            ["proxy fresh-check", miss_p50, _percentile(miss, 0.95), miss_p50 / raw_p50],
        ],
    )
    assert total >= 5 * size  # the scale claim is about real data volume
    # The cache must recover the bulk of the fresh-check cost.
    assert hit_p50 < miss_p50
    db.close()


# --------------------------------------------------------------------------
# E15c — end-to-end proxy overhead vs raw sqlite
# --------------------------------------------------------------------------


def run_stream(mode: str, requests, size: int):
    app, db = fresh_app("calendar", size=size, seed=3, backend="sqlite")
    gateway = None
    if mode == "gateway":
        gateway = EnforcementGateway(db, app.ground_truth_policy(), GatewayConfig())
        runner = AppRunner(app, db, mode="gateway", gateway=gateway)
    else:
        runner = AppRunner(app, db, mode="direct")
    started = time.perf_counter()
    outcomes = runner.run_all(requests)
    elapsed = time.perf_counter() - started
    hit_rate = gateway.cache_hit_rate() if gateway is not None else 0.0
    if gateway is not None:
        gateway.close()
    db.close()
    return len(outcomes) / elapsed, outcomes, hit_rate


def test_e15c_proxy_overhead_vs_raw_sqlite():
    size = 100 if QUICK else 1_000
    app, db = fresh_app("calendar", size=size, seed=3)
    requests = app.request_stream(db, random.Random(9), THROUGHPUT_REQUESTS)
    db.close()

    direct_rps, direct_outcomes, _ = run_stream("direct", requests, size)
    gateway_rps, gateway_outcomes, hit_rate = run_stream("gateway", requests, size)

    print_table(
        "E15c",
        f"proxy overhead vs raw sqlite ({size} users, {len(requests)} requests)",
        ["mode", "req_per_s", "completed", "blocked", "cache_hit_rate"],
        [
            [
                "direct sqlite",
                direct_rps,
                sum(1 for o in direct_outcomes if not o.blocked),
                0,
                "-",
            ],
            [
                "enforced gateway",
                gateway_rps,
                sum(1 for o in gateway_outcomes if not o.blocked),
                sum(1 for o in gateway_outcomes if o.blocked),
                f"{hit_rate:.3f}",
            ],
        ],
    )
    assert gateway_rps > 0
    # A compliant stream must not be blocked by enforcement.
    assert all(not outcome.blocked for outcome in gateway_outcomes)
