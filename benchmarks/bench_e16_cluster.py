"""E16 — The sharded cluster: fidelity, exchange amortization, scaling.

Four questions about the ``repro.cluster`` subsystem, all against real
shard *subprocesses* behind a real :class:`ClusterRouter`:

1. **E16a — decision fidelity.** The calendar workload replayed through
   a sharded cluster and through one in-process gateway over an
   identical database must produce the *same multiset* of
   ``(bound SQL, bindings, allow/block)`` decisions — sharding is an
   operational choice, never a semantic one. Cluster decisions come
   from the shards' audit JSONL logs; the single-gateway replay audits
   via ``gateway.decision_audit``.

2. **E16b — cross-shard template amortization.** With the template
   exchange on, a decision template derived on one shard is a cache hit
   on every shard, so a fleet pays ~one fresh check per query shape;
   with the exchange off each shard re-derives its own. Same traffic,
   two clusters: the exchange must strictly reduce total shared-cache
   misses.

3. **E16c — throughput vs fleet size.** The same workload at
   increasing shard counts. Shards are subprocesses, so checker work
   spreads across however many cores the host has; the table records
   the core count next to the throughput so the speedup column is
   interpretable — on a single-core box (CI) it measures the
   *distribution overhead* (router hop + N processes on one core),
   which must stay modest, not a speedup.

4. **E16d — rolling reload, zero torn decisions.** Traffic hammers the
   cluster while RELOAD fans out shard-by-shard, alternating the full
   policy and one missing a view (so a version-straddling decision
   *would* flip). Every audited decision is re-verified against a fresh
   checker for exactly the policy version it claims — across every
   shard, zero may disagree.

``E16_QUICK=1`` shrinks the fleet and stream for CI smoke runs (and is
what the CI cluster-smoke leg runs). ``E16_MISS_HEAVY=1`` is the
``--miss-heavy`` mode: shards run with ``--cache none`` so every
decision is a fresh compliance check and E16c measures how *checker
CPU* spreads across the fleet, not how a shared cache absorbs it — the
multi-core rerun the ROADMAP asks for. Its scaling table records as
``E16c-miss-heavy`` instead of overwriting the cached-mode TSV. Marked
``slow``.
"""

import json
import os
import random
import threading
import time

import pytest

from repro.bench.harness import print_table
from repro.cluster import BackgroundCluster, ClusterConfig
from repro.cluster.exchange import _deserialize_fact
from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import PolicyViolation
from repro.net import AdminClient, NetClientConnection
from repro.net.client import NetGatewayClient
from repro.policy import policy_to_text
from repro.policy.policy import Policy
from repro.serve import EnforcementGateway, GatewayConfig, WorkloadDriver
from repro.serve.pool import _TraceReplica
from repro.workloads import calendar_app

pytestmark = pytest.mark.slow

QUICK = os.environ.get("E16_QUICK", "") not in ("", "0")
MISS_HEAVY = os.environ.get("E16_MISS_HEAVY", "") not in ("", "0")

#: Shard database parameters — every shard, and every local replica this
#: benchmark compares against, must be built from the same (size, seed).
SIZE = 10
SEED = 7


def make_replica():
    """An (app, db, truth) triple identical to what each shard builds."""
    app = calendar_app.make_app()
    db = app.make_database(SIZE, SEED)
    return app, db, app.ground_truth_policy()


def without_view(policy: Policy, name: str) -> Policy:
    return Policy([v for v in policy.views if v.name != name], name=f"minus-{name}")


def read_audits(paths) -> list[dict]:
    records = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            records.extend(json.loads(line) for line in handle if line.strip())
    return records


def decision_key(sql, bindings, allowed) -> tuple:
    return (sql, json.dumps(bindings, sort_keys=True, default=str), bool(allowed))


def multiset(keys) -> dict:
    counts: dict = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    return counts


# --------------------------------------------------------------------------
# E16a — sharded vs single-gateway decision fidelity
# --------------------------------------------------------------------------


def fidelity(shards: int, n_requests: int, audit_dir: str):
    app, db, truth = make_replica()
    requests = calendar_app.request_stream(db, random.Random(11), n_requests)

    config = ClusterConfig(app="calendar", shards=shards, size=SIZE, seed=SEED,
                           audit_dir=audit_dir)
    with BackgroundCluster(config) as cluster:
        client = NetGatewayClient("127.0.0.1", cluster.port)
        cluster_report = WorkloadDriver(app, client, workers=4).run(requests)
        client.close()
        audit_paths = cluster.audit_paths()
    cluster_keys = multiset(
        decision_key(r["sql"], r["bindings"], r["allowed"])
        for r in read_audits(audit_paths)
    )

    gateway = EnforcementGateway(db, truth, GatewayConfig())
    single_records: list = []
    audit_lock = threading.Lock()

    def audit(record):
        with audit_lock:
            single_records.append(record)

    gateway.decision_audit = audit
    single_report = WorkloadDriver(app, gateway, workers=4).run(requests)
    gateway.close()
    single_keys = multiset(
        decision_key(r.sql, r.bindings, r.allowed) for r in single_records
    )

    disagreements = sum(
        abs(cluster_keys.get(key, 0) - single_keys.get(key, 0))
        for key in set(cluster_keys) | set(single_keys)
    )
    rows = [
        ("cluster", shards, n_requests, cluster_report.completed,
         cluster_report.blocked, cluster_report.aborted,
         sum(cluster_keys.values()), disagreements),
        ("single gateway", 1, n_requests, single_report.completed,
         single_report.blocked, single_report.aborted,
         sum(single_keys.values()), "-"),
    ]
    return rows, disagreements, cluster_report, single_report


# --------------------------------------------------------------------------
# E16b — template exchange on vs off
# --------------------------------------------------------------------------

#: Session-local allowed shapes (V1/V3): templates for these generalize
#: across principals, which is what the exchange amortizes fleet-wide.
SHAPES = [
    "SELECT EId FROM Attendance WHERE UId = ?",
    "SELECT Name FROM Users WHERE UId = ?",
]


#: A deterministically disallowed read: without an attendance fact in the
#: session trace, event rows are not visible. Issued twice per session
#: while the trace is still empty, the first derives a Block template
#: (zero facts considered → compilable) and the second must be a
#: compiled-template hit, making ``compiled_hits > 0`` a hard assertion.
BLOCKED_PROBE = "SELECT * FROM Events WHERE EId = ?"


def drive_shapes(port: int, users, settle_s: float) -> None:
    for uid in users:
        connection = NetClientConnection("127.0.0.1", port, user=uid)
        for _ in range(2):
            try:
                connection.query(BLOCKED_PROBE, [99])
            except PolicyViolation:
                pass
        for shape in SHAPES:
            connection.query(shape, [uid])
        connection.close()
        # Give templates time to cross the bus before the next principal
        # (possibly on another shard) issues the same shapes.
        time.sleep(settle_s)


def exchange_ablation(shards: int, users):
    results = {}
    for exchange in (True, False):
        config = ClusterConfig(
            app="calendar", shards=shards, size=SIZE, seed=SEED, exchange=exchange
        )
        with BackgroundCluster(config) as cluster:
            drive_shapes(cluster.port, users, settle_s=0.05)
            admin = AdminClient("127.0.0.1", cluster.port)
            stats = admin.stats()
            admin.close()
        counters = stats["gateway"]["counters"]
        results[exchange] = {
            "misses": counters.get("shared_cache_misses", 0),
            "hits": counters.get("shared_cache_hits", 0),
            "applied": counters.get("exchange_templates_applied", 0),
            "compiled_hits": counters.get("compiled_hits", 0),
            "hit_rate": stats["cache_hit_rate"],
        }
    rows = [
        ("exchange on", shards, len(users) * (len(SHAPES) + 2),
         results[True]["hits"], results[True]["misses"],
         results[True]["applied"], results[True]["compiled_hits"],
         round(results[True]["hit_rate"], 3)),
        ("exchange off", shards, len(users) * (len(SHAPES) + 2),
         results[False]["hits"], results[False]["misses"],
         results[False]["applied"], results[False]["compiled_hits"],
         round(results[False]["hit_rate"], 3)),
    ]
    return rows, results


# --------------------------------------------------------------------------
# E16c — session scaling vs shard count
# --------------------------------------------------------------------------


def scaling(shard_counts, n_requests: int, cache_mode: str = "shared"):
    app, db, _ = make_replica()
    requests = calendar_app.request_stream(db, random.Random(23), n_requests)
    cores = os.cpu_count() or 1
    rows = []
    throughputs = {}
    for shards in shard_counts:
        config = ClusterConfig(
            app="calendar", shards=shards, size=SIZE, seed=SEED,
            cache_mode=cache_mode,
        )
        with BackgroundCluster(config) as cluster:
            client = NetGatewayClient("127.0.0.1", cluster.port)
            report = WorkloadDriver(app, client, workers=8).run(requests)
            client.close()
        throughputs[shards] = report.throughput_rps
        rows.append(
            (shards, cores, cache_mode, n_requests, report.sessions,
             report.completed, report.aborted, report.errors,
             round(report.throughput_rps, 1),
             round(report.throughput_rps / throughputs[shard_counts[0]], 2))
        )
    return rows, throughputs


# --------------------------------------------------------------------------
# E16d — rolling reload under load: re-verify every audited decision
# --------------------------------------------------------------------------


def rolling_reload(shards: int, reloads: int, audit_dir: str):
    app, db, truth = make_replica()
    reduced = without_view(truth, "V2")
    config = ClusterConfig(app="calendar", shards=shards, size=SIZE, seed=SEED,
                           audit_dir=audit_dir)
    stop = threading.Event()
    errors: list = []
    executes = [0, 0, 0]  # prepared EXECUTEs completed, per traffic thread

    def traffic(slot: int, uid: int) -> None:
        # Each principal drives its hot shape through a *prepared handle*:
        # every reload flips the policy version under the handle, so the
        # loop crosses the stale-refuse -> re-prepare -> retry path on
        # every swap while the audit stream records the decisions.
        try:
            connection = NetClientConnection("127.0.0.1", port, user=uid)
            prepared = connection.prepare(
                "SELECT EId FROM Attendance WHERE UId = ?"
            )
            while not stop.is_set():
                connection.execute(prepared, [uid])
                executes[slot] += 1
                try:
                    connection.query("SELECT * FROM Events WHERE EId = 2")
                except PolicyViolation:
                    pass
            connection.close()
        except Exception as exc:  # pragma: no cover - surfaced in the table
            errors.append(exc)

    with BackgroundCluster(config) as cluster:
        port = cluster.port
        threads = [
            threading.Thread(target=traffic, args=(slot, uid))
            for slot, uid in enumerate((1, 2, 3))
        ]
        for thread in threads:
            thread.start()
        admin = AdminClient("127.0.0.1", port)
        try:
            # Version v serves `truth` when odd, `reduced` when even, so a
            # decision stamped with the wrong version would actually flip.
            for version in range(2, reloads + 2):
                policy = truth if version % 2 == 1 else reduced
                report = admin.reload(
                    policy_to_text(policy), label=f"rolling-v{version}"
                )
                assert report["new_version"] == version
                time.sleep(0.2)
        finally:
            admin.close()
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        with AdminClient("127.0.0.1", port) as admin:
            net_counters = admin.stats()["net"]["counters"]
        audit_paths = cluster.audit_paths()

    records = read_audits(audit_paths)
    checkers = {
        version: ComplianceChecker(
            db.schema, truth if version % 2 == 1 else reduced
        )
        for version in range(1, reloads + 2)
    }
    torn = 0
    for record in records:
        replica = _TraceReplica()
        replica.apply([("add", _deserialize_fact(f)) for f in record["facts"]])
        fresh = checkers[record["policy_version"]].check(
            db.parse(record["sql"]), record["bindings"], replica
        )
        if fresh.allowed != record["allowed"]:
            torn += 1
    versions_seen = sorted({record["policy_version"] for record in records})
    prepared_stats = {
        "executes": sum(executes),
        "prepared": net_counters.get("statements_prepared", 0),
        "stale": net_counters.get("prepared_stale", 0),
    }
    rows = [
        (shards, reloads, len(records), torn, len(errors),
         f"{versions_seen[0]}..{versions_seen[-1]}" if versions_seen else "-",
         prepared_stats["executes"], prepared_stats["stale"])
    ]
    return rows, torn, len(errors), len(records), prepared_stats


# --------------------------------------------------------------------------


def test_e16_cluster(benchmark, capsys, tmp_path):
    fidelity_shards = 2 if QUICK else 4
    fidelity_requests = 80 if QUICK else 300
    ablation_shards = 2 if QUICK else 4
    ablation_users = range(1, 7) if QUICK else range(1, 11)
    scale_counts = (1, 2) if QUICK else (1, 2, 4)
    scale_requests = 100 if QUICK else 400
    reload_shards = 2 if QUICK else 4
    reloads = 3 if QUICK else 6

    scale_cache_mode = "none" if MISS_HEAVY else "shared"

    fidelity_rows, disagreements, cluster_report, single_report = fidelity(
        fidelity_shards, fidelity_requests, str(tmp_path / "fidelity")
    )
    ablation_rows, ablation = exchange_ablation(ablation_shards, ablation_users)
    scaling_rows, throughputs = scaling(
        scale_counts, scale_requests, cache_mode=scale_cache_mode
    )
    reload_rows, torn, traffic_errors, audited, prepared_stats = rolling_reload(
        reload_shards, reloads, str(tmp_path / "reload")
    )

    # The measured pass for the benchmark fixture: one routed round trip
    # (router hop + shard decision) on a warm 2-shard cluster.
    config = ClusterConfig(app="calendar", shards=2, size=SIZE, seed=SEED)
    with BackgroundCluster(config) as cluster:
        connection = NetClientConnection("127.0.0.1", cluster.port, user=1)

        def one_roundtrip():
            connection.query("SELECT EId FROM Attendance WHERE UId = ?", [1])

        one_roundtrip()  # warm the caches out of the measured pass
        benchmark.pedantic(one_roundtrip, rounds=20, iterations=5)
        connection.close()

    with capsys.disabled():
        print_table(
            "E16a",
            "sharded cluster vs single gateway: decision fidelity",
            ["deployment", "shards", "requests", "completed", "blocked",
             "aborted", "decisions", "disagreements"],
            fidelity_rows,
        )
        print_table(
            "E16b",
            "cross-shard template exchange vs no-exchange ablation",
            ["mode", "shards", "queries", "hits", "misses",
             "templates applied", "compiled hits", "hit rate"],
            ablation_rows,
        )
        print_table(
            "E16c-miss-heavy" if MISS_HEAVY else "E16c",
            "workload throughput vs shard count"
            + (" (miss-heavy: --cache none, checker CPU dominates)"
               if MISS_HEAVY else ""),
            ["shards", "cores", "cache", "requests", "sessions", "completed",
             "aborted", "errors", "req/s", "speedup"],
            scaling_rows,
        )
        print_table(
            "E16d",
            "rolling reload under load (audited decisions re-verified)",
            ["shards", "reloads", "decisions", "torn", "errors", "versions",
             "prepared execs", "stale refusals"],
            reload_rows,
        )

    # E16a: identical decision multisets, and the replays really ran.
    assert disagreements == 0
    assert cluster_report.errors == 0 and single_report.errors == 0
    assert cluster_report.completed == single_report.completed
    # E16b: the exchange strictly reduces fleet-wide fresh checks and
    # actually moved templates across shards.
    assert ablation[True]["applied"] > 0
    assert ablation[True]["misses"] < ablation[False]["misses"]
    assert ablation[False]["applied"] == 0
    # The deterministic blocked-probe pairs hit their compiled Block
    # templates on every shard fleet, exchange or not: the merged STATS
    # counter the CI cluster-smoke leg gates on.
    assert ablation[True]["compiled_hits"] > 0
    assert ablation[False]["compiled_hits"] > 0
    # E16c: every fleet size served the full stream cleanly, and the
    # distribution layer's tax stays bounded even with every shard
    # contending for one core.
    for shards in scale_counts:
        assert throughputs[shards] > 0.3 * throughputs[scale_counts[0]]
    # E16d: zero torn-version decisions across every shard's audit — and
    # the prepared handles actually *lived through* the rolling reload:
    # traffic executed through handles the whole run, every swap
    # stale-refused the live ones, and the transparent re-prepares kept
    # the decision stream torn-free (the cluster-smoke CI gate).
    assert torn == 0
    assert traffic_errors == 0
    assert audited > 0
    assert prepared_stats["executes"] > 0
    assert prepared_stats["stale"] > 0
