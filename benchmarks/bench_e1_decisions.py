"""E1 — Enforcement decisions (§2.2, Example 2.1).

Table rows: the Example 2.1 verdict triple (Q1; Q2 with history; Q2
without history), then per-app decision counts on a compliant workload
(expect zero false blocks) and on the attack probes (expect zero false
allows).
"""

import random

import pytest

from repro.bench.harness import print_table
from repro.enforce import DecisionCache, EnforcementProxy, PolicyViolation, Session
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads.runner import AppRunner

from conftest import ALL_APPS, fresh_app


def example_21_rows():
    app, db = fresh_app("calendar")
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = app.ground_truth_policy()
    rows = []

    with_history = EnforcementProxy(db, policy, Session.for_user(1))
    with_history.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
    rows.append(("Ex2.1 Q1 (check)", "with history", "ALLOW", "paper: ALLOW"))
    try:
        with_history.query("SELECT * FROM Events WHERE EId = 2")
        verdict = "ALLOW"
    except PolicyViolation:
        verdict = "BLOCK"
    rows.append(("Ex2.1 Q2 (detail)", "with history", verdict, "paper: ALLOW"))

    fresh = EnforcementProxy(db, policy, Session.for_user(1))
    try:
        fresh.query("SELECT * FROM Events WHERE EId = 2")
        verdict = "ALLOW"
    except PolicyViolation:
        verdict = "BLOCK"
    rows.append(("Ex2.1 Q2 (detail)", "no history", verdict, "paper: BLOCK"))
    return rows


def workload_rows():
    rows = []
    for name in ALL_APPS:
        app, db = fresh_app(name)
        policy = app.ground_truth_policy()
        requests = app.request_stream(db, random.Random(1), 60)
        runner = AppRunner(
            app, db, mode="proxy", policy=policy, cache=DecisionCache(policy)
        )
        outcomes = runner.run_all(requests)
        false_blocks = sum(1 for o in outcomes if o.blocked)
        attacks = app.attack_queries(db, 1)
        proxy = EnforcementProxy(db, policy, Session.for_user(1))
        blocked = 0
        for sql, args in attacks:
            try:
                proxy.query(sql, args)
            except PolicyViolation:
                blocked += 1
        rows.append(
            (
                name,
                len(requests),
                false_blocks,
                f"{blocked}/{len(attacks)}",
                "ok" if false_blocks == 0 and blocked == len(attacks) else "MISMATCH",
            )
        )
    return rows


def test_e1_decision_matrix(benchmark, capsys):
    app, db = fresh_app("calendar")
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = app.ground_truth_policy()

    def q1_decision():
        proxy = EnforcementProxy(db, policy, Session.for_user(1))
        return proxy.decide(
            bind_parameters(
                parse_select("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?"),
                [1, 2],
            )
        )

    decision = benchmark(q1_decision)
    assert decision.allowed

    with capsys.disabled():
        print_table(
            "E1a",
            "Example 2.1 verdicts",
            ["query", "history", "verdict", "expected"],
            example_21_rows(),
        )
        print_table(
            "E1b",
            "compliant workload + attack probes, per app",
            ["app", "requests", "false blocks", "attacks blocked", "status"],
            workload_rows(),
        )
