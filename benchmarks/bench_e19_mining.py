"""E19 — Continuous policy mining from the live decision audit.

Three questions about the ``repro.mining`` subsystem, each answered
end-to-end through the real serving stack (gateway → audit stream →
miner → shadow → promotion gates):

1. **E19a — seeded gaps are found and healed, safely.** A calendar and
   a hospital deployment each start on their ground-truth policy, take
   live traffic, then suffer an operator mistake: a hot reload to a
   policy missing one view. Subsequent traffic hits the gap (blocked
   queries the old policy allowed). The mining service, tapping the
   decision audit, mines a gap-filling candidate from the pre-reload
   allows, auto-submits it to shadow, and promotes it through the
   gates. The oracle replays **every** audited allow against the
   promoted policy with a fresh checker: zero may flip to block.

2. **E19b — unexercised views are tightened.** Traffic that only ever
   exercises a subset of the policy's views. The miner proposes
   dropping the unused views; the strongest candidate shadows the same
   live traffic (zero divergences, because nothing used the view) and
   is promoted under the tightening gates. The same replay oracle
   certifies zero over-blocking.

3. **E19c — a regressive candidate never goes live.** A deliberately
   bad tightening candidate (dropping the view every live query needs)
   is submitted to the service. Shadow traffic flips allow→block, the
   gates reject it with §5 diagnoses attached to the candidate's
   disposition record, and the active epoch never changes.

``E19_QUICK=1`` shrinks sizes for CI smoke runs. Marked ``slow``.
"""

import os

import pytest

from repro.bench.harness import print_table
from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import PolicyViolation
from repro.lifecycle import GateConfig, LifecycleManager
from repro.mining import MinedCandidate, MiningConfig
from repro.policy.policy import Policy
from repro.serve import EnforcementGateway, GatewayConfig
from repro.serve.pool import _TraceReplica
from repro.workloads import calendar_app

from conftest import OPAQUE_HINTS, fresh_app

pytestmark = pytest.mark.slow

QUICK = os.environ.get("E19_QUICK", "") not in ("", "0")


# Per-app live-traffic shapes: (allowed probes, the gap view to seed,
# one query only that view justifies).
SCENARIOS = {
    "calendar": {
        "gap_view": "V2",
        "probes": [
            "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {i}",
            "SELECT Name FROM Users WHERE UId = 1",
        ],
        "gap_query": "SELECT * FROM Events WHERE EId = 2",
    },
    "hospital": {
        "gap_view": "VT",
        "probes": [
            "SELECT PId, Name, DId FROM Patients WHERE PId = {i}",
            "SELECT DId, Name FROM Doctors WHERE DId = {i}",
        ],
        "gap_query": "SELECT DId, Disease FROM DoctorDiseases WHERE DId = 1",
    },
}


def without_view(policy: Policy, name: str) -> Policy:
    return Policy([v for v in policy.views if v.name != name], name=f"minus-{name}")


def make_mining_stack(name: str, mode: str, shadow_checks: int):
    app, db = fresh_app(name, size=10)
    if name == "calendar" and db.query(
        "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"
    ).is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    gateway = EnforcementGateway(
        db,
        app.ground_truth_policy(),
        GatewayConfig(
            mining=MiningConfig(
                min_window=4, mode=mode, opaque_columns=OPAQUE_HINTS[name]
            )
        ),
    )
    manager = LifecycleManager(
        gateway, gates=GateConfig(min_shadow_checks=shadow_checks)
    )
    return app, db, gateway, manager, manager.mining


def drive(connection, scenario, indices, with_gap_query=False):
    """Live traffic; returns how many queries the policy blocked."""
    blocked = 0
    for index in indices:
        for shape in scenario["probes"]:
            try:
                connection.query(shape.format(i=index))
            except PolicyViolation:
                blocked += 1
    if with_gap_query:
        try:
            connection.query(scenario["gap_query"])
        except PolicyViolation:
            blocked += 1
    return blocked


def replay_allows(db, policy, records):
    """The safety oracle: every audited allow, re-checked under
    ``policy`` with a fresh checker and the facts as of decision time.
    Returns (allows replayed, over-blocked)."""
    checker = ComplianceChecker(db.schema, policy)
    replayed = over_blocked = 0
    for record in records:
        if not record.allowed:
            continue
        replayed += 1
        replica = _TraceReplica()
        replica.apply([("add", fact) for fact in record.facts])
        fresh = checker.check(db.parse(record.sql), record.bindings, replica)
        if not fresh.allowed:
            over_blocked += 1
    return replayed, over_blocked


# --------------------------------------------------------------------------
# E19a — seeded gap mined from live audit, promoted, zero over-blocking
# --------------------------------------------------------------------------


def heal_seeded_gap(name: str, shadow_checks: int):
    scenario = SCENARIOS[name]
    app, db, gateway, manager, service = make_mining_stack(
        name, "auto_promote", shadow_checks
    )
    oracle = service.stream.subscribe(cap=1_000_000)
    truth = app.ground_truth_policy()
    connection = gateway.connect(1)

    # Live traffic under v1 — includes the gap-view-justified query.
    drive(connection, scenario, range(1, 6), with_gap_query=True)
    # The operator mistake: a reload that silently loses one view.
    manager.reload(without_view(truth, scenario["gap_view"]), label="ops-mistake")
    blocked = drive(connection, scenario, range(1, 4), with_gap_query=True)
    assert blocked >= 1  # the gap is live: old allows now block

    # The cycle may also propose tightening unused views; the gap-fill
    # (mined first) takes the single shadow slot.
    first = service.run_once()
    gap_fills = [
        service.candidates[f]
        for f in first["mined"]
        if service.candidates[f].kind == "gap-fill"
    ]
    assert len(gap_fills) == 1, first
    candidate = gap_fills[0]
    fingerprint = candidate.fingerprint
    assert candidate.status == "shadowing"  # auto-submitted

    # Shadow traffic: fresh statement shapes, enough for the gate floor.
    drive(connection, scenario, range(20, 20 + shadow_checks + 4))
    second = service.run_once()
    assert second["progressed"]["action"] == "promoted", second

    healed = gateway.connect(1).query(scenario["gap_query"])
    replayed, over_blocked = replay_allows(db, gateway.policy, [
        entry.record for entry in oracle.drain()
    ])
    row = (
        name,
        scenario["gap_view"],
        second["window"],
        fingerprint[:8],
        round(candidate.support, 3),
        round(candidate.confidence, 2),
        gateway.policy_version,
        replayed,
        over_blocked,
    )
    result = {
        "row": row,
        "promoted": service.promoted,
        "version": gateway.policy_version,
        "provenance": gateway.policy.meta.get("provenance"),
        "healed_rows": len(healed),
        "over_blocked": over_blocked,
        "actions": [
            e["action"]
            for e in service.disposition_audit()
            if e["fingerprint"] == fingerprint
        ],
    }
    service.close()
    gateway.close()
    return result


# --------------------------------------------------------------------------
# E19b — unused views tightened away, zero over-blocking
# --------------------------------------------------------------------------


def tighten_unused_views(shadow_checks: int):
    app, db, gateway, manager, service = make_mining_stack(
        "calendar", "auto_promote", shadow_checks
    )
    oracle = service.stream.subscribe(cap=1_000_000)
    truth = app.ground_truth_policy()
    used = {"V1", "V3"}  # the only views this deployment's traffic needs
    connection = gateway.connect(1)
    scenario = SCENARIOS["calendar"]

    drive(connection, scenario, range(1, 8))
    first = service.run_once()
    tightens = [
        service.candidates[f]
        for f in first["mined"]
        if service.candidates[f].kind == "tighten"
    ]
    assert tightens, first
    shadowing = [c for c in tightens if c.status == "shadowing"]
    assert len(shadowing) == 1  # one shadow slot: strongest goes first
    dropped = shadowing[0].view_name
    assert dropped not in used

    drive(connection, scenario, range(20, 20 + shadow_checks + 4))
    second = service.run_once()
    assert second["progressed"]["action"] == "promoted", second
    assert len(gateway.policy) == len(truth) - 1

    replayed, over_blocked = replay_allows(db, gateway.policy, [
        entry.record for entry in oracle.drain()
    ])
    proposed = sorted(c.view_name for c in tightens)
    row = (
        "calendar",
        ",".join(proposed),
        dropped,
        round(shadowing[0].support, 3),
        gateway.policy_version,
        replayed,
        over_blocked,
    )
    result = {
        "row": row,
        "dropped": dropped,
        "proposed": proposed,
        "version": gateway.policy_version,
        "over_blocked": over_blocked,
        "policy_len": len(gateway.policy),
        "truth_len": len(truth),
    }
    service.close()
    gateway.close()
    return result


# --------------------------------------------------------------------------
# E19c — a regressive candidate is rejected and never reaches the epoch
# --------------------------------------------------------------------------


def reject_regressive_candidate(shadow_checks: int):
    app, db, gateway, manager, service = make_mining_stack(
        "calendar", "propose_only", shadow_checks
    )
    truth = app.ground_truth_policy()
    regressive = without_view(truth, "V1")  # every live probe needs V1
    candidate = MinedCandidate(
        kind="tighten",
        policy=regressive,
        view_name="V1",
        view_sql=truth.view("V1").sql,
        fingerprint=regressive.fingerprint(),
        support=1.0,
        confidence=1.0,
        window=(1, 1),
        examples=(),
        miner_fingerprint=service.config.fingerprint(),
        source_version=1,
    )
    service.submit(candidate)
    connection = gateway.connect(1)
    drive(connection, SCENARIOS["calendar"], range(1, shadow_checks + 5))
    progressed = service.run_once()["progressed"]
    rejected_entries = [
        entry
        for entry in service.disposition_audit()
        if entry["action"] == "rejected"
    ]
    row = (
        "tighten minus-V1 (live traffic needs V1)",
        progressed["action"],
        len(candidate.diagnoses),
        str(candidate.diagnoses[0]).splitlines()[0] if candidate.diagnoses else "-",
        gateway.policy_version,
    )
    result = {
        "row": row,
        "action": progressed["action"],
        "diagnoses": candidate.diagnoses,
        "version": gateway.policy_version,
        "status": candidate.status,
        "audited": bool(rejected_entries and rejected_entries[0]["diagnoses"]),
    }
    service.close()
    gateway.close()
    return result


def test_e19_mining(benchmark, capsys):
    shadow_checks = 6 if QUICK else 24

    gap_results = [
        heal_seeded_gap(name, shadow_checks) for name in ("calendar", "hospital")
    ]
    tighten_result = tighten_unused_views(shadow_checks)
    reject_result = reject_regressive_candidate(shadow_checks)

    # The measured pass: one full mining cycle (drain → mine → disposition)
    # over a settled window on an idle service.
    app, db, gateway, manager, service = make_mining_stack(
        "calendar", "propose_only", shadow_checks
    )
    connection = gateway.connect(1)
    drive(connection, SCENARIOS["calendar"], range(1, 10))
    benchmark.pedantic(service.run_once, rounds=5, iterations=1)
    service.close()
    gateway.close()

    with capsys.disabled():
        print_table(
            "E19a",
            "seeded policy gap mined from live audit and healed (replay oracle)",
            [
                "app",
                "gap view",
                "window",
                "candidate",
                "support",
                "confidence",
                "active ver",
                "allows replayed",
                "over-blocked",
            ],
            [r["row"] for r in gap_results],
        )
        print_table(
            "E19b",
            "unexercised views tightened away (replay oracle)",
            [
                "app",
                "proposed drops",
                "promoted drop",
                "support",
                "active ver",
                "allows replayed",
                "over-blocked",
            ],
            [tighten_result["row"]],
        )
        print_table(
            "E19c",
            "regressive candidate rejected with diagnoses, epoch untouched",
            ["candidate", "disposition", "diagnoses", "first diagnosis", "active ver"],
            [reject_result["row"]],
        )

    # E19a: both apps mined exactly the gap, promoted it through the
    # gates, healed live traffic, and over-blocked nothing.
    for result in gap_results:
        assert result["promoted"] == 1
        assert result["version"] == 3
        assert result["provenance"] == "mined"
        assert result["healed_rows"] >= 1
        assert result["over_blocked"] == 0
        assert result["actions"] == ["mined", "shadowing", "promoted"]
    # E19b: a tightening candidate for an unused view was mined and
    # promoted with zero over-blocking.
    assert tighten_result["dropped"] in tighten_result["proposed"]
    assert tighten_result["policy_len"] == tighten_result["truth_len"] - 1
    assert tighten_result["over_blocked"] == 0
    # E19c: the regressive candidate was rejected with §5 diagnoses in
    # the disposition audit and never reached the active epoch.
    assert reject_result["action"] == "rejected"
    assert reject_result["status"] == "rejected"
    assert reject_result["diagnoses"]
    assert reject_result["audited"]
    assert reject_result["version"] == 1
