"""E13 — Multicore checker fleet: pooled misses, memoized core, indexed cache.

Four questions about the PR-3 performance work (``repro.serve.pool``,
``repro.relalg.memo``, the indexed ``repro.enforce.cache``):

1. **E13a — miss-heavy throughput vs worker count.** With decision
   caching off every request pays a full compliance check; under the GIL
   those serialize no matter how many driver threads run. Shipping the
   miss path to a :class:`CheckerPool` should scale with cores. (The
   ≥2.5× assertion at 4 workers only fires on machines with ≥4 CPUs —
   on fewer cores the table still records the IPC overhead honestly.)

2. **E13b — memoization ablation.** The same check stream with the
   rewriting-core memos disabled (the seed path), cold, and warm; the
   warm pass must beat the seed path and the memos must show real hit
   rates.

3. **E13c — invalidation at 10k templates.** The reverse-indexed
   ``invalidate_table`` visits only skeleton keys that touch the written
   table; asserted via the ``invalidate_keys_scanned`` instrumentation
   and compared against a full linear scan.

4. **E13d — zero disagreements.** Seed (memo off), memoized, and pooled
   checking produce identical decisions on a shared query stream, and a
   pooled gateway run with ``verify_cached_decisions`` on reports zero
   cached-vs-fresh disagreements (the E11 safety check, against the
   pooled path).

``E13_QUICK=1`` shrinks sizes for CI smoke runs. Marked ``slow``.
"""

import os
import random
import time

import pytest

from repro.bench.harness import print_table
from repro.enforce.cache import DecisionCache, _Template
from repro.enforce.checker import ComplianceChecker
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.relalg import memo
from repro.relalg.translate import translate_select
from repro.serve import CheckerPool, EnforcementGateway, GatewayConfig, WorkloadDriver
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app

from conftest import fresh_app

pytestmark = pytest.mark.slow

QUICK = os.environ.get("E13_QUICK", "") not in ("", "0")


# --------------------------------------------------------------------------
# E13a — miss-heavy throughput vs worker count
# --------------------------------------------------------------------------


def replay_miss_heavy(check_workers: int, requests: int, seed: int = 11):
    """Replay a stream with decision caching OFF: every request is a miss."""
    app, db = fresh_app("social", size=16)
    policy = app.ground_truth_policy()
    gateway = EnforcementGateway(
        db,
        policy,
        GatewayConfig(cache_mode="none", check_workers=check_workers),
    )
    driver = WorkloadDriver(app, gateway, workers=4)
    stream = app.request_stream(db, random.Random(seed), requests)
    try:
        report = driver.run(stream)
        counters = gateway.snapshot().counters
    finally:
        gateway.close()
    return report, counters


def throughput_rows(requests: int):
    worker_counts = [0, 1] if QUICK else [0, 1, 2, 4]
    rows = []
    baseline = None
    for workers in worker_counts:
        report, counters = replay_miss_heavy(workers, requests)
        if baseline is None:
            baseline = report.throughput_rps
        rows.append(
            (
                workers,
                report.requests,
                round(report.throughput_rps, 1),
                round(report.throughput_rps / baseline, 2) if baseline else 0,
                counters.get("pool_tasks_dispatched", 0),
                counters.get("pool_errors", 0),
                counters.get("pool_fallbacks", 0),
            )
        )
    return rows


# --------------------------------------------------------------------------
# E13b — memoization ablation on a repeated check stream
# --------------------------------------------------------------------------

SHAPES = [
    ("SELECT EId FROM Attendance WHERE UId = ?", 1),
    ("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", 2),
    ("SELECT * FROM Events WHERE EId = ?", 1),
    ("SELECT Title, Loc FROM Events WHERE EId = ?", 1),
    ("SELECT Name FROM Users WHERE UId = ?", 1),
]


def check_stream(n: int, seed: int = 7):
    rng = random.Random(seed)
    stream = []
    for _ in range(n):
        sql, holes = SHAPES[rng.randrange(len(SHAPES))]
        args = [rng.randint(1, 6) for _ in range(holes)]
        stream.append((bind_parameters(parse_select(sql), args), rng.randint(1, 6)))
    return stream


def run_checks(checker, stream):
    started = time.perf_counter()
    decisions = [
        checker.check(stmt, {"MyUId": user}) for stmt, user in stream
    ]
    return time.perf_counter() - started, decisions


def best_of(checker, stream, repeats=3):
    """Best-of-N timing: the minimum is the least noise-contaminated run."""
    best_s, decisions = run_checks(checker, stream)
    for _ in range(repeats - 1):
        elapsed, decisions = run_checks(checker, stream)
        best_s = min(best_s, elapsed)
    return best_s, decisions


def memo_rows(checks: int):
    schema = calendar_app.make_schema()
    policy = calendar_app.ground_truth_policy()
    checker = ComplianceChecker(schema, policy)
    stream = check_stream(checks)

    memo.set_memoization(False)
    seed_s, seed_decisions = best_of(checker, stream)

    memo.set_memoization(True)
    memo.clear_memos()
    memo.reset_memo_stats()
    cold_s, cold_decisions = run_checks(checker, stream)
    warm_s, warm_decisions = best_of(checker, stream)
    stats = memo.memo_stats()

    def hit_rate(name):
        hits, misses = stats[f"{name}_hits"], stats[f"{name}_misses"]
        return hits / (hits + misses) if hits + misses else 0.0

    rows = [
        ("seed (memo off)", checks, round(seed_s, 3), round(checks / seed_s, 1), "-", "-"),
        (
            "memo cold",
            checks,
            round(cold_s, 3),
            round(checks / cold_s, 1),
            round(hit_rate("containment"), 3),
            round(hit_rate("descriptors"), 3),
        ),
        (
            "memo warm",
            checks,
            round(warm_s, 3),
            round(checks / warm_s, 1),
            round(hit_rate("containment"), 3),
            round(hit_rate("descriptors"), 3),
        ),
    ]
    disagreements = sum(
        1
        for a, b, c in zip(seed_decisions, cold_decisions, warm_decisions)
        if not (a.allowed == b.allowed == c.allowed and a.reason == b.reason == c.reason)
    )
    return rows, seed_s / warm_s, disagreements


# --------------------------------------------------------------------------
# E13c — invalidation latency and scan instrumentation at 10k templates
# --------------------------------------------------------------------------


def synthetic_template(key: str, table: str) -> _Template:
    return _Template(
        skeleton_key=key,
        pinned=(),
        equality_pattern=(),
        fact_patterns=(),
        reason="bench",
        tables=frozenset({table}),
    )


def invalidation_rows(templates: int, tables: int):
    policy = calendar_app.ground_truth_policy()
    cache = DecisionCache(policy)
    all_templates = [
        (f"key-{i}", f"T{i % tables:03d}") for i in range(templates)
    ]
    for key, table in all_templates:
        cache._insert_template(synthetic_template(key, table))

    affected = templates // tables
    started = time.perf_counter()
    evicted = cache.invalidate_table("T000")
    indexed_ms = (time.perf_counter() - started) * 1000
    keys_scanned = cache.invalidate_keys_scanned

    # The seed behavior for comparison: visit every template in the cache.
    started = time.perf_counter()
    linear_evicted = sum(1 for _, table in all_templates if table == "T000")
    linear_scanned = len(all_templates)
    linear_ms = (time.perf_counter() - started) * 1000

    assert evicted == affected == linear_evicted
    # The instrumentation claim: only the affected table's keys were
    # visited, none of the other (templates - affected) keys.
    assert keys_scanned == affected, (keys_scanned, affected)

    return [
        (
            templates,
            tables,
            affected,
            keys_scanned,
            linear_scanned,
            round(indexed_ms, 3),
            round(linear_ms, 3),
        )
    ]


# --------------------------------------------------------------------------
# E13d — three-way agreement: seed vs memoized vs pooled
# --------------------------------------------------------------------------


def make_trace(schema, seen):
    trace = Trace()
    for uid, eid in seen:
        guard = translate_select(
            bind_parameters(
                parse_select("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?"),
                [uid, eid],
            ),
            schema,
        ).disjuncts[0]
        trace.record("guard", guard, Result(columns=["c"], rows=[(1,)]))
    return trace


def agreement_rows(checks: int):
    schema = calendar_app.make_schema()
    policy = calendar_app.ground_truth_policy()
    checker = ComplianceChecker(schema, policy)
    pool = CheckerPool(schema, policy, workers=1)
    rng = random.Random(23)
    stream = check_stream(checks, seed=23)
    disagreements = 0
    try:
        for token, (stmt, user) in enumerate(stream):
            seen = [(user, rng.randint(1, 6)) for _ in range(rng.randrange(3))]
            trace = make_trace(schema, seen)
            memo.set_memoization(False)
            seed_d = checker.check(stmt, {"MyUId": user}, trace)
            memo.set_memoization(True)
            memoized_d = checker.check(stmt, {"MyUId": user}, trace)
            pooled_d = pool.check(token, {"MyUId": user}, stmt, trace)
            if not (
                seed_d.allowed == memoized_d.allowed == pooled_d.allowed
                and seed_d.reason == memoized_d.reason == pooled_d.reason
            ):
                disagreements += 1
    finally:
        pool.close()

    # The E11 safety check against the pooled path: every shared-cache hit
    # re-verified through the (pooled) fresh checker.
    app, db = fresh_app("social", size=12)
    gateway = EnforcementGateway(
        db,
        app.ground_truth_policy(),
        GatewayConfig(verify_cached_decisions=True, check_workers=1),
    )
    driver = WorkloadDriver(app, gateway, workers=4)
    stream = app.request_stream(db, random.Random(5), 60 if QUICK else 160)
    try:
        report = driver.run(stream)
        counters = gateway.snapshot().counters
        cache_disagreements = counters.get("cache_disagreements", 0)
        verified = counters.get("cache_verified", 0)
    finally:
        gateway.close()

    rows = [
        ("seed vs memoized vs pooled", checks, disagreements),
        (f"pooled gateway verify ({report.requests} reqs, {verified} verified)",
         verified, cache_disagreements),
    ]
    return rows, disagreements + cache_disagreements


def test_e13_multicore(benchmark, capsys):
    requests = 60 if QUICK else 240
    checks = 60 if QUICK else 200
    templates = 2000 if QUICK else 10000

    throughput = throughput_rows(requests)
    memo_table, memo_speedup, memo_disagreements = memo_rows(checks)
    invalidation = invalidation_rows(templates, tables=100)
    agreement, total_disagreements = agreement_rows(30 if QUICK else 80)

    # The measured pass for the benchmark fixture: one warm memoized check.
    schema = calendar_app.make_schema()
    policy = calendar_app.ground_truth_policy()
    checker = ComplianceChecker(schema, policy)
    stmt = bind_parameters(
        parse_select("SELECT EId FROM Attendance WHERE UId = ?"), [1]
    )
    checker.check(stmt, {"MyUId": 1})  # warm the memos

    def warm_check():
        checker.check(stmt, {"MyUId": 1})

    benchmark.pedantic(warm_check, rounds=5, iterations=10)

    with capsys.disabled():
        print_table(
            "E13a",
            "miss-heavy throughput vs checker workers (social, cache off)",
            ["workers", "requests", "req/s", "speedup", "pool tasks", "errors", "fallbacks"],
            throughput,
        )
        print_table(
            "E13b",
            "rewriting-core memoization ablation (calendar checks)",
            ["mode", "checks", "seconds", "checks/s", "containment hit", "descriptor hit"],
            memo_table,
        )
        print_table(
            "E13c",
            "indexed invalidation at scale (one table invalidated)",
            [
                "templates",
                "tables",
                "affected",
                "keys scanned",
                "linear scan",
                "indexed ms",
                "linear ms",
            ],
            invalidation,
        )
        print_table(
            "E13d",
            "decision agreement across execution modes",
            ["comparison", "checks", "disagreements"],
            agreement,
        )
        print(f"\nmemo warm speedup over seed path: {memo_speedup:.2f}x")

    # Memoization must pay for itself on a warm stream and never change
    # a decision.
    assert memo_speedup > 1.0, memo_speedup
    assert memo_disagreements == 0
    assert total_disagreements == 0
    # The multicore claim, only on hardware that can show it.
    if not QUICK and (os.cpu_count() or 1) >= 4:
        by_workers = {row[0]: row[3] for row in throughput}
        assert by_workers.get(4, 0) >= 2.5, throughput
