"""Shared benchmark fixtures and helpers.

Each benchmark module regenerates one experiment from DESIGN.md §3 and
prints its table/figure series (visible with ``pytest benchmarks/
--benchmark-only``; tables bypass capture so they always show).
"""

from __future__ import annotations

import random

import pytest

from repro.workloads import calendar_app, employees, hospital, social

ALL_APPS = {
    "calendar": calendar_app,
    "hospital": hospital,
    "employees": employees,
    "social": social,
}

#: Opaque-identifier hints per app, used by the mining experiments.
OPAQUE_HINTS = {
    "calendar": frozenset(
        {
            ("Attendance", "EId"),
            ("Attendance", "UId"),
            ("Events", "EId"),
            ("Users", "UId"),
        }
    ),
    "hospital": frozenset(
        {
            ("Patients", "PId"),
            ("Doctors", "DId"),
            ("DoctorDiseases", "DId"),
            ("Patients", "DId"),
        }
    ),
    "employees": frozenset({("Employees", "EId")}),
    "social": frozenset(
        {
            ("Posts", "PId"),
            ("Posts", "Author"),
            ("Users", "UId"),
            ("Friendships", "UId1"),
            ("Friendships", "UId2"),
            ("Comments", "PId"),
        }
    ),
}


@pytest.fixture(scope="session")
def rng():
    return random.Random(2026)


def fresh_app(
    name: str,
    size: int | None = None,
    seed: int = 3,
    backend: str | None = None,
    db_path: str | None = None,
):
    module = ALL_APPS[name]
    app = module.make_app()
    db = app.make_database(
        size or app.default_size, seed, backend=backend, db_path=db_path
    )
    return app, db
