"""E3 — Decision-cache behavior over a session stream (figure).

Series: cumulative cache hit rate and mean decision latency as requests
accumulate. Expected shape: hit rate climbs toward 1 as the workload's
query templates are all seen; decision latency drops correspondingly.
"""

import random
import time

from repro.bench.harness import print_figure_series
from repro.enforce import DecisionCache
from repro.workloads.runner import AppRunner

from conftest import fresh_app

CHECKPOINTS = [10, 25, 50, 100, 200]


def cache_series():
    app, db = fresh_app("calendar", size=20)
    policy = app.ground_truth_policy()
    cache = DecisionCache(policy)
    runner = AppRunner(app, db, mode="proxy", policy=policy, cache=cache)
    requests = app.request_stream(db, random.Random(8), max(CHECKPOINTS))
    hit_rates = []
    mean_check_us = []
    served = 0
    for checkpoint in CHECKPOINTS:
        batch = requests[served:checkpoint]
        runner.run_all(batch)
        served = checkpoint
        hit_rates.append(round(cache.hit_rate, 3))
        total_checks = sum(
            p.stats.allowed + p.stats.blocked for p in runner.proxies()
        )
        total_seconds = sum(p.stats.check_seconds for p in runner.proxies())
        mean_check_us.append(round(total_seconds / max(total_checks, 1) * 1e6, 1))
    return hit_rates, mean_check_us


def test_e3_cache_hit_rate(benchmark, capsys):
    app, db = fresh_app("calendar", size=20)
    policy = app.ground_truth_policy()
    cache = DecisionCache(policy)
    runner = AppRunner(app, db, mode="proxy", policy=policy, cache=cache)
    warmup = app.request_stream(db, random.Random(8), 50)
    runner.run_all(warmup)
    probe = warmup[:10]

    def cached_pass():
        runner.run_all(probe)

    benchmark.pedantic(cached_pass, rounds=20, iterations=1)
    assert cache.hit_rate > 0.5

    with capsys.disabled():
        hit_rates, mean_check_us = cache_series()
        print_figure_series(
            "E3",
            "decision cache over a session stream",
            "requests",
            CHECKPOINTS,
            {"hit rate": hit_rates, "mean decision µs": mean_check_us},
        )
