"""E5 — Black-box mining learning curve (§3.2.2, figure).

Series: precision and recall of the mined policy as the number of
observed request traces grows. Expected shape: recall climbs to 1.0 as
coverage improves; precision stays at 1.0 throughout (with hints and
active discovery on, the miner never over-generalizes on these apps).
"""

import random

from repro.bench.harness import print_figure_series
from repro.extract.miner import MinerConfig, TraceMiner
from repro.policy.compare import compare_policies

from conftest import OPAQUE_HINTS, fresh_app

TRACE_COUNTS = [1, 2, 5, 10, 25, 50, 100]


def learning_curve():
    app, db = fresh_app("calendar", size=14, seed=5)
    truth = app.ground_truth_policy()
    requests = app.request_stream(db, random.Random(6), max(TRACE_COUNTS))
    precision, recall, views = [], [], []
    for count in TRACE_COUNTS:
        miner = TraceMiner(
            app, db, MinerConfig(opaque_columns=OPAQUE_HINTS["calendar"])
        )
        policy = miner.mine(requests[:count])
        comparison = compare_policies(policy, truth)
        precision.append(round(comparison.precision, 2))
        recall.append(round(comparison.recall, 2))
        views.append(len(policy))
    return precision, recall, views


def test_e5_mining_learning_curve(benchmark, capsys):
    app, db = fresh_app("calendar", size=14, seed=5)
    requests = app.request_stream(db, random.Random(6), 25)

    def mine_25():
        miner = TraceMiner(
            app, db, MinerConfig(opaque_columns=OPAQUE_HINTS["calendar"])
        )
        return miner.mine(requests)

    policy = benchmark.pedantic(mine_25, rounds=5, iterations=1)
    assert len(policy) >= 3

    with capsys.disabled():
        precision, recall, views = learning_curve()
        print_figure_series(
            "E5",
            "mining quality vs observed traces (calendar)",
            "traces",
            TRACE_COUNTS,
            {"precision": precision, "recall": recall, "views": views},
        )
