#!/usr/bin/env python3
"""Policy evaluation (§4): audit a policy for sensitive-data disclosure.

The hospital scenario of Example 4.1: staff may see patient→doctor
assignments and doctor→disease specialties; a patient's disease is
sensitive. The audit runs

* the prior-agnostic checkers (PQI/NQI, with the integrity constraint
  supplied as a TGD),
* a k-anonymity measurement of a quasi-identifier release, and
* the Bayesian baseline across a sweep of adversary priors — showing why
  the paper argues priors can't anchor a usable criterion.

Run:  python examples/disclosure_audit.py
"""

import random

from repro.evaluate.answers import images_of
from repro.evaluate.bayes import ChoicePrior, posterior_over_sensitive
from repro.evaluate.kanon import (
    age_hierarchy,
    categorical_hierarchy,
    find_minimal_generalization,
    k_anonymity,
    zip_hierarchy,
)
from repro.evaluate.nqi import check_nqi
from repro.evaluate.pqi import check_pqi
from repro.relalg.chase import TGD
from repro.relalg.cq import Atom, Var
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select
from repro.workloads import employees, hospital


def hospital_audit() -> None:
    print("=== Example 4.1: hospital policy vs a patient's disease ===")
    db = hospital.make_database(size=8, seed=11)
    views = hospital.ground_truth_policy().view_defs({})
    sensitive = translate_select(
        parse_select("SELECT Disease FROM PatientConditions WHERE PId = 1"),
        db.schema,
    ).disjuncts[0]
    constraint = TGD(
        body=(Atom("PatientConditions", (Var("p"), Var("d"))),),
        head=(
            Atom("Patients", (Var("p"), Var("n"), Var("doc"))),
            Atom("DoctorDiseases", (Var("doc"), Var("d"))),
        ),
        name="a condition is treated by the assigned doctor",
    )
    print(check_pqi(sensitive, views, constraints=[constraint]).explain())
    print(check_nqi(sensitive, views, constraints=[constraint]).explain())

    # The Bayesian baseline, under three different adversary priors.
    print("\nBayesian belief about John's disease (posterior of top answer):")
    contents = db.relation_contents()
    observed = images_of(views, contents)
    fixed = {r: rows for r, rows in contents.items() if r != "PatientConditions"}
    doctor_of = {p: doc for (p, _, doc) in contents["Patients"]}
    treats: dict = {}
    for doc, disease in contents["DoctorDiseases"]:
        treats.setdefault(doc, []).append(disease)
    for tilt in (0.05, 0.5, 0.95):
        groups = []
        for pid in sorted(doctor_of):
            options = sorted(treats[doctor_of[pid]])
            weights = (
                [1.0]
                if len(options) == 1
                else [
                    tilt if d == options[0] else (1 - tilt) / (len(options) - 1)
                    for d in options
                ]
            )
            groups.append([((pid, d), w) for d, w in zip(options, weights)])
        prior = ChoicePrior(fixed=fixed, choices={"PatientConditions": groups})
        report = posterior_over_sensitive(
            prior, views, observed, sensitive, samples=1500, rng=random.Random(0)
        )
        top = report.top_posterior()
        answer = sorted(top[0])[0][0] if top and top[0] else "(none)"
        print(
            f"  prior tilt {tilt:.2f}: top answer {answer!r}"
            f" with posterior {top[1]:.2f}" if top else "  (no posterior)"
        )
    print(
        "  → the Bayesian verdict moves with the prior; PQI/NQI above"
        " are fixed.\n"
    )


def kanon_audit() -> None:
    print("=== k-anonymity of an employee quasi-identifier release ===")
    db = employees.make_database(size=40, seed=13)
    rows = db.query("SELECT Age, Dept, ZIP, Salary FROM Employees").rows
    quasi = [0, 1, 2]
    print(f"raw release: k = {k_anonymity(rows, quasi)}")
    result = find_minimal_generalization(
        rows,
        quasi,
        [age_hierarchy(), categorical_hierarchy("dept"), zip_hierarchy()],
        k=3,
        max_suppressed=4,
    )
    if result is None:
        print("no generalization achieves k = 3")
        return
    print(
        f"minimal generalization to k = 3: levels {result.levels},"
        f" {result.suppressed} row(s) suppressed, achieved k = {result.k}"
    )
    print(f"sample generalized row: {result.rows[0]}")


def main() -> None:
    hospital_audit()
    kanon_audit()


if __name__ == "__main__":
    main()
