#!/usr/bin/env python3
"""The operator's day-2 toolkit: lint, explain, and the fragment boundary.

Three small workflows an operator ("Dora", in the paper) runs after
enforcement is deployed:

1. lint a policy draft for redundant/broad/typo'd views,
2. ask the proxy to *explain* its decisions (the machine-checkable
   justification behind each ALLOW), and
3. see the analyzable-fragment boundary in action: aggregate analytics
   run fine on a direct (trusted) connection, while the same SQL through
   the proxy is conservatively blocked.

Run:  python examples/operator_toolkit.py
"""

from repro import EnforcementProxy, PolicyViolation, ProxyConfig, Session
from repro.policy import Policy, View, lint_policy
from repro.workloads import employees


def lint_demo(db) -> None:
    print("=== policy lint ===")
    draft = Policy(
        [
            View("Vdir", "SELECT EId, Name, Dept FROM Employees", db.schema),
            # Redundant: a projection of Vdir.
            View("Vnames", "SELECT Name FROM Employees", db.schema),
            # Typo'd parameter (?MyUid vs ?MyUId).
            View("Vself", "SELECT * FROM Employees WHERE EId = ?MyUId", db.schema),
            View("Voops", "SELECT Salary FROM Employees WHERE EId = ?MyUid", db.schema),
            View("Vme2", "SELECT Age FROM Employees WHERE EId = ?MyUId", db.schema),
        ],
        name="draft",
    )
    for finding in lint_policy(draft):
        print(" ", finding.describe())
    print()


def explain_demo(db) -> None:
    print("=== decision explanations ===")
    policy = employees.ground_truth_policy()
    proxy = EnforcementProxy(
        db, policy, Session.for_user(3), ProxyConfig(record_decisions=True)
    )
    proxy.query("SELECT EId, Name, Dept FROM Employees")
    print(proxy.stats.decisions[-1].explain())
    try:
        proxy.query("SELECT Name, Salary FROM Employees")
    except PolicyViolation as violation:
        print(violation.decision.explain())
    print()


def fragment_demo(db) -> None:
    print("=== fragment boundary: analytics vs enforcement ===")
    analytics = (
        "SELECT Dept, COUNT(*), AVG(Salary) FROM Employees"
        " GROUP BY Dept HAVING COUNT(*) >= 5 ORDER BY Dept"
    )
    print("direct (trusted operator connection):")
    for dept, headcount, avg_salary in db.query(analytics).rows:
        print(f"  {dept:<8} headcount={headcount:<3} avg salary={avg_salary:,.0f}")
    proxy = EnforcementProxy(
        db, employees.ground_truth_policy(), Session.for_user(3)
    )
    try:
        proxy.query(analytics)
    except PolicyViolation as violation:
        print(f"proxied: {violation.decision.describe()}")
        print(
            "  (aggregates are outside the analyzable fragment; the proxy"
            " blocks rather than guess)"
        )


def main() -> None:
    db = employees.make_database(size=40, seed=13)
    lint_demo(db)
    explain_demo(db)
    fragment_demo(db)


if __name__ == "__main__":
    main()
