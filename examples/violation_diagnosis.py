#!/usr/bin/env python3
"""Violation diagnosis (§5): from a blocked query to validated patches.

A "code update" makes the calendar app fetch event details without its
access check; the proxy blocks the query. The diagnosis produces a
counterexample (the proof of violation), a generated policy patch
(flagged as too broad), a query-narrowing patch, and the paper's
access-check patch — then applies the access check and shows the flow
passing.

Run:  python examples/violation_diagnosis.py
"""

from repro import EnforcementProxy, PolicyViolation, Session
from repro.diagnose import diagnose
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app


def main() -> None:
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.ground_truth_policy()
    proxy = EnforcementProxy(db, policy, Session.for_user(1))

    # The buggy handler skips the attendance check:
    offending_sql = "SELECT * FROM Events WHERE EId = ?"
    try:
        proxy.query(offending_sql, [2])
    except PolicyViolation as violation:
        print(f"{violation.decision.describe()}\n")

    stmt = bind_parameters(parse_select(offending_sql), [2])
    report = diagnose(stmt, {"MyUId": 1}, policy, db.schema)
    print(report.describe())

    # Apply the synthesized access check and replay the fixed flow.
    if report.access_check_patches:
        patch = report.access_check_patches[0]
        print("\n--- replaying with the access-check patch applied ---")
        fixed = EnforcementProxy(db, policy, Session.for_user(1))
        guard = fixed.query(patch.check_sql)
        if guard.is_empty():
            print("guard empty: the handler would 404 (and leak nothing)")
        else:
            detail = fixed.query(offending_sql, [2])
            print(f"guard passed; detail fetch allowed: {detail.first()}")


if __name__ == "__main__":
    main()
