#!/usr/bin/env python3
"""Serve a realistic calendar workload behind three connection modes.

Shows the deployment story of §2.2: the same application handlers run
unmodified against a direct connection, the enforcing proxy (with its
decision-template cache), and a row-level-security baseline — and the
proxy blocks nothing on a compliant workload while stopping every probe.

Run:  python examples/calendar_enforcement.py
"""

import random
import time

from repro import DecisionCache, EnforcementProxy, PolicyViolation, Session
from repro.workloads import calendar_app
from repro.workloads.runner import AppRunner


def timed(label, fn):
    started = time.perf_counter()
    result = fn()
    print(f"  {label:<28} {time.perf_counter() - started:6.3f}s")
    return result


def main() -> None:
    app = calendar_app.make_app()
    db = calendar_app.make_database(size=20, seed=7)
    policy = app.ground_truth_policy()
    requests = app.request_stream(db, random.Random(1), 150)
    print(f"serving {len(requests)} requests over {db.total_rows()} rows\n")

    print("mode timings:")
    timed("direct (no enforcement)", lambda: AppRunner(app, db, mode="direct").run_all(requests))

    cache = DecisionCache(policy)
    runner = AppRunner(app, db, mode="proxy", policy=policy, cache=cache)
    outcomes = timed("enforcement proxy", lambda: runner.run_all(requests))
    blocked = [o for o in outcomes if o.blocked]
    print(f"    false blocks: {len(blocked)} (expected 0)")
    print(f"    cache: {cache.size} templates, {cache.hit_rate:.0%} hit rate")

    timed("RLS baseline", lambda: AppRunner(app, db, mode="rls").run_all(requests))

    print("\nattack probes (user 1):")
    proxy = EnforcementProxy(db, policy, Session.for_user(1))
    for sql, args in app.attack_queries(db, 1):
        try:
            proxy.query(sql, args)
            print(f"  ALLOWED (unexpected!): {sql}")
        except PolicyViolation:
            print(f"  blocked: {sql}")


if __name__ == "__main__":
    main()
