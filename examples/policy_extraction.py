#!/usr/bin/env python3
"""Policy extraction (§3): generate a draft policy from the application.

Both extractors run against the calendar app:

* the language-based extractor symbolically executes the handlers
  (Listing 1 included) and recovers the policy exactly;
* the language-agnostic miner watches the app serve requests black-box
  and generalizes the observed queries, using the paper's three controls
  (size budget, opacity hints, active constraint discovery).

Run:  python examples/policy_extraction.py
"""

import random

from repro import compare_policies, policy_to_text
from repro.extract.miner import MinerConfig, TraceMiner
from repro.extract.symbolic import SymbolicExtractor
from repro.workloads import calendar_app


def main() -> None:
    app = calendar_app.make_app()
    db = calendar_app.make_database(size=14, seed=5)
    truth = app.ground_truth_policy()

    print("=== language-based extraction (symbolic execution, §3.2.1) ===")
    extractor = SymbolicExtractor(db.schema)
    symbolic_policy, report = extractor.extract(list(app.handlers.values()))
    print(policy_to_text(symbolic_policy))
    print(f"paths explored per handler: {report.paths_explored}")
    comparison = compare_policies(symbolic_policy, truth)
    print(f"vs hand-written ground truth: {comparison.describe()}\n")

    print("=== language-agnostic extraction (trace mining, §3.2.2) ===")
    requests = app.request_stream(db, random.Random(6), 100)
    config = MinerConfig(
        opaque_columns=frozenset(
            {
                ("Attendance", "EId"),
                ("Attendance", "UId"),
                ("Events", "EId"),
                ("Users", "UId"),
            }
        ),
        size_budget=24,
        active_discovery=True,
    )
    miner = TraceMiner(app, db, config)
    mined_policy = miner.mine(requests)
    print(policy_to_text(mined_policy))
    print(
        f"observed {miner.report.traces} traces / {miner.report.events} queries;"
        f" {miner.report.guarded_templates} guarded template(s)"
    )
    comparison = compare_policies(mined_policy, truth)
    print(f"vs hand-written ground truth: {comparison.describe()}")


if __name__ == "__main__":
    main()
