#!/usr/bin/env python3
"""Quickstart: the paper's Example 2.1 in twenty lines.

Run:  python examples/quickstart.py
"""

from repro import EnforcementProxy, PolicyViolation, Session
from repro.workloads import calendar_app


def main() -> None:
    # A calendar database and the paper's view-based policy (V1, V2, ...).
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.ground_truth_policy()
    print(policy.describe())
    print()

    # The application talks to the proxy exactly as it would to the DB.
    proxy = EnforcementProxy(db, policy, Session.for_user(1))

    # (Q1) "Does the current user attend Event #2?" — allowed under V1.
    q1 = proxy.query("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [1, 2])
    print(f"Q1 allowed; returned {len(q1)} row(s)")

    # (Q2) "Fetch Event #2's details" — allowed ONLY because Q1 returned
    # a row: the trace certifies Attendance(1, 2), which V2 then covers.
    q2 = proxy.query("SELECT * FROM Events WHERE EId = ?", [2])
    print(f"Q2 allowed given the history; event row: {q2.first()}")

    # The same Q2 from a fresh session (no history) is blocked outright.
    fresh = EnforcementProxy(db, policy, Session.for_user(1))
    try:
        fresh.query("SELECT * FROM Events WHERE EId = ?", [2])
    except PolicyViolation as violation:
        print(f"fresh session: {violation.decision.describe()}")

    # And a query for data the policy never grants is always blocked.
    try:
        proxy.query("SELECT * FROM Events")
    except PolicyViolation as violation:
        print(f"full dump:     {violation.decision.describe()}")


if __name__ == "__main__":
    main()
