"""The paper's Example 2.1, end-to-end through the real proxy.

This is the reproduction's acceptance test: the exact query sequence of
§2.2 with the exact verdicts the paper states, against live data.
"""

import pytest

from repro.enforce import EnforcementProxy, PolicyViolation, ProxyConfig, Session
from repro.workloads import calendar_app


@pytest.fixture
def setup():
    db = calendar_app.make_database(size=10, seed=3)
    # Ensure the paper's concrete rows exist: user 1 attends event 2.
    if db.query(
        "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"
    ).is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.ground_truth_policy()
    return db, policy


def test_full_example(setup):
    db, policy = setup
    proxy = EnforcementProxy(db, policy, Session.for_user(1))

    # (Q1) Does User #1 attend Event #2? — allowed under V1.
    q1 = proxy.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
    assert not q1.is_empty()

    # (Q2) Fetch details about Event #2 — allowed *given Q1's answer*.
    q2 = proxy.query("SELECT * FROM Events WHERE EId = 2")
    assert len(q2) == 1
    assert proxy.stats.allowed == 2
    assert proxy.stats.blocked == 0


def test_q2_blocked_in_isolation(setup):
    db, policy = setup
    fresh = EnforcementProxy(db, policy, Session.for_user(1))
    with pytest.raises(PolicyViolation):
        fresh.query("SELECT * FROM Events WHERE EId = 2")


def test_q2_blocked_when_history_disabled(setup):
    db, policy = setup
    proxy = EnforcementProxy(
        db, policy, Session.for_user(1), ProxyConfig(history_enabled=False)
    )
    proxy.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
    with pytest.raises(PolicyViolation):
        proxy.query("SELECT * FROM Events WHERE EId = 2")


def test_q2_blocked_for_non_attendee(setup):
    db, policy = setup
    db.sql("DELETE FROM Attendance WHERE UId = 2 AND EId = 2")
    proxy = EnforcementProxy(db, policy, Session.for_user(2))
    check = proxy.query("SELECT 1 FROM Attendance WHERE UId = 2 AND EId = 2")
    assert check.is_empty()  # allowed, but returns nothing
    with pytest.raises(PolicyViolation):
        proxy.query("SELECT * FROM Events WHERE EId = 2")
