"""The full life-cycle the paper argues for, as one integration flow:

extraction (§3) → evaluation (§4) → enforcement (§2.2) → diagnosis (§5).
"""

import random

import pytest

from repro.diagnose import diagnose
from repro.enforce import DecisionCache, EnforcementProxy, PolicyViolation, Session
from repro.evaluate.nqi import check_nqi
from repro.evaluate.pqi import check_pqi
from repro.extract.symbolic import SymbolicExtractor
from repro.policy import compare_policies, policy_from_text, policy_to_text
from repro.relalg.translate import translate_select
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app
from repro.workloads.runner import AppRunner


def test_extract_then_enforce_then_diagnose():
    app = calendar_app.make_app()
    db = app.make_database(12, seed=5)

    # 1. Policy creation (§3): extract a policy from the handlers.
    extractor = SymbolicExtractor(db.schema)
    extracted, _ = extractor.extract(list(app.handlers.values()))
    assert compare_policies(extracted, app.ground_truth_policy()).exact

    # 2. Policy evaluation (§4): check a sensitive query before deploying.
    views = extracted.view_defs({"MyUId": 1})
    sensitive = translate_select(
        parse_select("SELECT EId, Title, Time, Loc FROM Events"), db.schema
    ).disjuncts[0]
    # Attended events' details are disclosed by design (PQI), but the
    # policy places no bound on all events (no NQI).
    assert check_pqi(sensitive, views).holds
    assert not check_nqi(sensitive, views).holds

    # 3. Enforcement (§2.2): run the app behind the proxy with the
    # extracted policy — zero false blocks.
    requests = app.request_stream(db, random.Random(3), 40)
    runner = AppRunner(
        app, db, mode="proxy", policy=extracted, cache=DecisionCache(extracted)
    )
    outcomes = runner.run_all(requests)
    assert all(not o.blocked for o in outcomes)

    # 4. A code update introduces an unchecked query; it gets blocked...
    proxy = EnforcementProxy(db, extracted, Session.for_user(1))
    with pytest.raises(PolicyViolation):
        proxy.query("SELECT * FROM Events WHERE EId = 2")

    # ... and diagnosis (§5) produces validated patches.
    stmt = bind_parameters(
        parse_select("SELECT * FROM Events WHERE EId = ?"), [2]
    )
    report = diagnose(stmt, {"MyUId": 1}, extracted, db.schema)
    assert report.counterexample is not None
    assert report.access_check_patches or report.narrowing_patches


def test_policy_survives_serialization_roundtrip():
    app = calendar_app.make_app()
    db = app.make_database(10, seed=5)
    extractor = SymbolicExtractor(db.schema)
    extracted, _ = extractor.extract(list(app.handlers.values()))
    text = policy_to_text(extracted)
    restored = policy_from_text(text, db.schema)
    assert compare_policies(restored, extracted).exact

    # The restored policy enforces identically.
    proxy = EnforcementProxy(db, restored, Session.for_user(1))
    uid, eid = db.query("SELECT UId, EId FROM Attendance WHERE UId = 1").first()
    proxy.query("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid])
    proxy.query("SELECT * FROM Events WHERE EId = ?", [eid])
    assert proxy.stats.blocked == 0


def test_patched_policy_unblocks_query():
    app = calendar_app.make_app()
    db = app.make_database(10, seed=5)
    policy = app.ground_truth_policy()
    stmt = bind_parameters(parse_select("SELECT * FROM Users WHERE UId = ?"), [1])
    gapped = type(policy)([v for v in policy.views if v.name != "V3"], name="gapped")
    report = diagnose(stmt, {"MyUId": 1}, gapped, db.schema)
    assert report.policy_patches
    patched = report.policy_patches[0].apply(gapped)
    proxy = EnforcementProxy(db, patched, Session.for_user(1))
    result = proxy.query("SELECT * FROM Users WHERE UId = ?", [1])
    assert len(result) == 1
