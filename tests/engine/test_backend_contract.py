"""The backend contract, enforced identically on every registered backend.

One parametrized suite pins the :class:`~repro.engine.backend.EngineBackend`
contract — execute/snapshot/restore round-trips, close() idempotency and
enforcement, insert/row_count consistency, integrity errors — for the
in-memory backend, in-memory SQLite, and file-backed SQLite, so a new
backend inherits the whole battery by appearing in ``BACKENDS``. Registry
and factory behavior (``open_database``, ``REPRO_BACKEND``) is covered at
the end.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    Schema,
    TableSchema,
    available_backends,
    open_database,
)
from repro.engine.backend import create_backend, register_backend
from repro.engine.backend.registry import BACKEND_ENV_VAR, default_backend_name
from repro.util.errors import EngineError, IntegrityError

BACKENDS = ["memory", "sqlite", "sqlite-file"]


def make_schema() -> Schema:
    """All four column types, a composite-PK child, an FK, and a nullable."""
    return Schema.of(
        TableSchema(
            "Items",
            (
                Column("id", ColumnType.INT, nullable=False),
                Column("label", ColumnType.TEXT, nullable=False),
                Column("score", ColumnType.REAL, nullable=True),
                Column("active", ColumnType.BOOL, nullable=False),
            ),
            primary_key=("id",),
        ),
        TableSchema(
            "Tags",
            (
                Column("item", ColumnType.INT, nullable=False),
                Column("tag", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("item", "tag"),
            foreign_keys=(ForeignKey("item", "Items", "id"),),
        ),
    )


ITEMS = [
    (1, "alpha", 0.5, True),
    (2, "beta", None, False),
    (3, "gamma", 2.25, True),
]
TAGS = [(1, "red"), (1, "blue"), (3, "red")]


def open_backend_db(kind: str, tmp_path) -> Database:
    if kind == "sqlite-file":
        return open_database(
            make_schema(), backend="sqlite", path=str(tmp_path / "contract.db")
        )
    return open_database(make_schema(), backend=kind)


@pytest.fixture(params=BACKENDS)
def db(request, tmp_path) -> Database:
    database = open_backend_db(request.param, tmp_path)
    database.insert_rows("Items", ITEMS)
    database.insert_rows("Tags", TAGS)
    yield database
    if not database.backend.closed:
        database.close()


class TestExecuteRoundTrips:
    def test_select_returns_inserted_rows(self, db):
        result = db.query("SELECT id, label, score, active FROM Items ORDER BY id")
        assert result.columns == ["id", "label", "score", "active"]
        assert result.rows == ITEMS

    def test_values_round_trip_types(self, db):
        (row,) = db.query("SELECT * FROM Items WHERE id = 1").rows
        assert row == (1, "alpha", 0.5, True)
        assert isinstance(row[3], bool)
        (row,) = db.query("SELECT * FROM Items WHERE id = 2").rows
        assert row[2] is None
        assert row[3] is False

    def test_insert_then_select(self, db):
        assert db.sql("INSERT INTO Items VALUES (4, 'delta', 1.0, FALSE)") == 1
        assert db.row_count("Items") == 4
        (row,) = db.query("SELECT label FROM Items WHERE id = 4").rows
        assert row == ("delta",)

    def test_update_returns_affected_count(self, db):
        assert db.sql("UPDATE Items SET active = FALSE WHERE active = TRUE") == 2
        assert db.query("SELECT id FROM Items WHERE active = TRUE").is_empty()

    def test_delete_returns_affected_count(self, db):
        assert db.sql("DELETE FROM Tags WHERE item = 1") == 2
        assert db.row_count("Tags") == 1

    def test_parameter_binding(self, db):
        result = db.query("SELECT label FROM Items WHERE id = ? AND active = ?", [1, True])
        assert result.rows == [("alpha",)]

    def test_join_across_tables(self, db):
        result = db.query(
            "SELECT i.label, t.tag FROM Items i JOIN Tags t ON t.item = i.id"
            " WHERE t.tag = 'red' ORDER BY i.id"
        )
        assert result.rows == [("alpha", "red"), ("gamma", "red")]

    def test_unordered_select_is_compared_as_multiset(self, db):
        # Row ORDER without ORDER BY is backend-defined; only the multiset
        # is part of the contract.
        rows = db.query("SELECT id FROM Items").rows
        assert sorted(rows) == [(1,), (2,), (3,)]


class TestInsertRowCountConsistency:
    def test_insert_rows_reports_count(self, db):
        assert db.insert_rows("Items", [(10, "j", None, True), (11, "k", 0.0, False)]) == 2
        assert db.row_count("Items") == 5

    def test_total_rows_sums_tables(self, db):
        assert db.total_rows() == len(ITEMS) + len(TAGS)

    def test_relation_contents_shape(self, db):
        contents = db.relation_contents()
        assert set(contents) == {"Items", "Tags"}
        assert contents["Items"] == set(ITEMS)
        assert contents["Tags"] == set(TAGS)

    def test_row_count_unknown_table_raises(self, db):
        with pytest.raises(EngineError):
            db.row_count("Nope")


class TestIntegrity:
    def test_duplicate_primary_key(self, db):
        with pytest.raises(IntegrityError):
            db.insert_rows("Items", [(1, "dup", None, True)])

    def test_composite_primary_key(self, db):
        with pytest.raises(IntegrityError):
            db.insert_rows("Tags", [(1, "red")])

    def test_foreign_key_enforced(self, db):
        with pytest.raises(IntegrityError):
            db.sql("INSERT INTO Tags VALUES (999, 'ghost')")

    def test_not_null_enforced(self, db):
        with pytest.raises(IntegrityError):
            db.insert_rows("Items", [(7, None, None, True)])

    def test_value_type_checked(self, db):
        with pytest.raises(IntegrityError):
            db.insert_rows("Items", [(8, "x", "not-a-real", True)])
        with pytest.raises(IntegrityError):
            db.insert_rows("Items", [("not-an-int", "x", None, True)])

    def test_unknown_insert_column(self, db):
        with pytest.raises(IntegrityError):
            db.sql("INSERT INTO Items (id, nosuch) VALUES (9, 1)")

    def test_failed_insert_leaves_counts_unchanged(self, db):
        before = db.row_count("Items")
        with pytest.raises(IntegrityError):
            db.insert_rows("Items", [(1, "dup", None, True)])
        assert db.row_count("Items") == before


class TestSnapshotRestore:
    def test_round_trip_restores_contents(self, db):
        snapshot = db.snapshot()
        db.sql("DELETE FROM Tags")
        db.sql("UPDATE Items SET label = 'mangled'")
        db.insert_rows("Items", [(50, "extra", None, False)])
        db.restore(snapshot)
        assert db.relation_contents() == {
            "Items": set(ITEMS),
            "Tags": set(TAGS),
        }

    def test_snapshot_is_isolated_from_later_writes(self, db):
        snapshot = db.snapshot()
        db.sql("DELETE FROM Tags WHERE item = 1")
        db.restore(snapshot)
        assert db.row_count("Tags") == len(TAGS)

    def test_restore_twice(self, db):
        snapshot = db.snapshot()
        db.sql("DELETE FROM Tags")
        db.restore(snapshot)
        db.sql("DELETE FROM Tags")
        db.restore(snapshot)
        assert db.relation_contents()["Tags"] == set(TAGS)


class TestClose:
    def test_close_is_idempotent(self, db):
        db.close()
        db.close()
        assert db.backend.closed

    def test_statements_after_close_raise_mentioning_closed(self, db):
        db.close()
        with pytest.raises(EngineError, match="closed"):
            db.query("SELECT * FROM Items")

    def test_backend_refuses_work_after_close(self, db):
        backend = db.backend
        db.close()
        with pytest.raises(EngineError, match="closed"):
            backend.snapshot()
        with pytest.raises(EngineError, match="closed"):
            backend.insert_rows("Items", [(60, "late", None, True)])


class TestBackendIdentity:
    def test_describe_names_the_backend(self, db):
        info = db.backend.describe()
        assert info["name"] == db.backend_name
        assert db.backend_name in ("memory", "sqlite")

    def test_table_access_is_memory_only(self, db):
        if db.backend_name == "memory":
            assert db.table("Items") is not None
        else:
            with pytest.raises(EngineError, match="Table objects"):
                db.table("Items")


class TestSqliteDurability:
    def test_file_backend_survives_reopen(self, tmp_path):
        path = str(tmp_path / "durable.db")
        first = open_database(make_schema(), backend="sqlite", path=path)
        first.insert_rows("Items", ITEMS)
        first.close()
        second = open_database(make_schema(), backend="sqlite", path=path)
        assert second.relation_contents()["Items"] == set(ITEMS)
        second.close()

    def test_memory_sqlite_is_ephemeral(self):
        first = open_database(make_schema(), backend="sqlite")
        first.insert_rows("Items", ITEMS)
        first.close()
        second = open_database(make_schema(), backend="sqlite")
        assert second.row_count("Items") == 0
        second.close()

    def test_workload_loader_does_not_reseed_a_durable_file(self, tmp_path):
        from repro.workloads import calendar_app

        path = str(tmp_path / "calendar.db")
        first = calendar_app.make_database(size=5, seed=3, db_path=path, backend="sqlite")
        contents = first.relation_contents()
        first.sql("DELETE FROM Attendance WHERE UId = 1")
        mutated = first.relation_contents()
        first.close()
        # Reopening must neither double-insert (UNIQUE violations) nor
        # overwrite the durable data with fresh seed rows.
        second = calendar_app.make_database(size=5, seed=3, db_path=path, backend="sqlite")
        assert second.relation_contents() == mutated
        assert second.relation_contents() != contents
        second.close()


class TestRegistryAndFactory:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "memory" in names
        assert "sqlite" in names

    def test_unknown_backend_raises_with_available_list(self):
        with pytest.raises(EngineError, match="memory"):
            open_database(make_schema(), backend="nosuch")

    def test_duplicate_registration_refused(self):
        with pytest.raises(EngineError, match="already registered"):
            register_backend("memory", lambda schema, **kw: None)

    def test_memory_rejects_path(self, tmp_path):
        with pytest.raises(EngineError, match="path"):
            open_database(make_schema(), backend="memory", path=str(tmp_path / "x.db"))
        with pytest.raises(EngineError, match="path"):
            Database(make_schema(), path=str(tmp_path / "x.db"))

    def test_create_backend_builds_named_backend(self):
        backend = create_backend("sqlite", make_schema())
        assert backend.name == "sqlite"
        backend.close()

    def test_env_var_reroutes_open_database(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "sqlite")
        assert default_backend_name() == "sqlite"
        db = open_database(make_schema())
        assert db.backend_name == "sqlite"
        db.close()

    def test_env_var_does_not_touch_bare_database(self, monkeypatch):
        # Engine tests that construct Database(schema) directly always get
        # the in-memory backend; only open_database consults the env.
        monkeypatch.setenv(BACKEND_ENV_VAR, "sqlite")
        db = Database(make_schema())
        assert db.backend_name == "memory"

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "sqlite")
        db = open_database(make_schema(), backend="memory")
        assert db.backend_name == "memory"

    def test_adopting_a_backend_instance(self):
        backend = create_backend("sqlite", make_schema())
        db = Database(backend=backend)
        assert db.backend is backend
        assert db.schema is backend.schema
        db.close()
        assert backend.closed
