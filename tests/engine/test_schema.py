"""Schema object tests."""

import pytest

from repro.engine import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.sqlir.parser import parse_sql
from repro.util.errors import IntegrityError


def users_table():
    return TableSchema(
        "Users",
        (
            Column("UId", ColumnType.INT, nullable=False),
            Column("Name", ColumnType.TEXT),
        ),
        primary_key=("UId",),
    )


class TestTableSchema:
    def test_column_names_and_index(self):
        table = users_table()
        assert table.column_names == ("UId", "Name")
        assert table.index_of("Name") == 1

    def test_unknown_column_raises(self):
        with pytest.raises(IntegrityError):
            users_table().index_of("Nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(IntegrityError):
            TableSchema("T", (Column("a", ColumnType.INT), Column("a", ColumnType.INT)))

    def test_pk_must_reference_existing_column(self):
        with pytest.raises(IntegrityError):
            TableSchema("T", (Column("a", ColumnType.INT),), primary_key=("b",))

    def test_fk_must_reference_existing_column(self):
        with pytest.raises(IntegrityError):
            TableSchema(
                "T",
                (Column("a", ColumnType.INT),),
                foreign_keys=(ForeignKey("b", "U", "x"),),
            )


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema.of(users_table())
        assert schema.table("Users").name == "Users"
        assert schema.columns_of("Users") == ("UId", "Name")

    def test_duplicate_table_rejected(self):
        schema = Schema.of(users_table())
        with pytest.raises(IntegrityError):
            schema.add(users_table())

    def test_fk_to_unknown_table_rejected(self):
        schema = Schema.of(users_table())
        with pytest.raises(IntegrityError):
            schema.add(
                TableSchema(
                    "Orders",
                    (Column("UId", ColumnType.INT),),
                    foreign_keys=(ForeignKey("UId", "Nope", "UId"),),
                )
            )

    def test_self_referencing_fk_allowed(self):
        schema = Schema()
        schema.add(
            TableSchema(
                "Tree",
                (
                    Column("Id", ColumnType.INT, nullable=False),
                    Column("Parent", ColumnType.INT),
                ),
                primary_key=("Id",),
                foreign_keys=(ForeignKey("Parent", "Tree", "Id"),),
            )
        )

    def test_columns_of_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            Schema().columns_of("Nope")

    def test_from_create_statements(self):
        stmt = parse_sql(
            "CREATE TABLE T (id INTEGER PRIMARY KEY, name TEXT NOT NULL,"
            " owner INT REFERENCES T (id))"
        )
        schema = Schema.from_create_statements([stmt])
        table = schema.table("T")
        assert table.primary_key == ("id",)
        assert not table.column("id").nullable
        assert not table.column("name").nullable
        assert table.foreign_keys[0] == ForeignKey("owner", "T", "id")
