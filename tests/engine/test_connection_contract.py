"""The shared ``Connection`` close contract, over every implementation.

Two clauses, uniform across backends:

* ``close()`` is idempotent — closing an already-closed connection is a
  no-op, never an error (so teardown paths can be sloppy about
  ownership without cascading failures);
* use-after-close refuses — any ``sql()``/``query()`` on a closed
  connection raises :class:`EngineError` mentioning "closed" instead of
  silently limping on over dead state.
"""

from __future__ import annotations

import pytest

from repro.enforce import (
    DirectConnection,
    EnforcementProxy,
    RowLevelSecurityProxy,
    Session,
)
from repro.engine import Connection
from repro.net import BackgroundServer, NetClientConnection, ServerConfig
from repro.serve import EnforcementGateway, GatewayConfig
from repro.util.errors import EngineError
from repro.workloads import calendar_app

PROBE_SQL = "SELECT EId FROM Attendance WHERE UId = 1"


def make_db():
    return calendar_app.make_database(size=5, seed=3)


def make_database_connection():
    yield make_db()


def make_direct():
    yield DirectConnection(make_db())


def make_rls():
    app = calendar_app.make_app()
    yield RowLevelSecurityProxy(make_db(), app.rls_predicates, {"MyUId": 1})


def make_proxy():
    app = calendar_app.make_app()
    yield EnforcementProxy(make_db(), app.ground_truth_policy(), Session.for_user(1))


def make_gateway_connection():
    app = calendar_app.make_app()
    gateway = EnforcementGateway(make_db(), app.ground_truth_policy(), GatewayConfig())
    yield gateway.connect(1)


def make_net_client():
    app = calendar_app.make_app()
    gateway = EnforcementGateway(make_db(), app.ground_truth_policy(), GatewayConfig())
    with BackgroundServer(gateway, ServerConfig(port=0)) as background:
        yield NetClientConnection(background.host, background.port, user=1)


FACTORIES = {
    "database": make_database_connection,
    "direct": make_direct,
    "rls": make_rls,
    "proxy": make_proxy,
    "gateway": make_gateway_connection,
    "net-client": make_net_client,
}


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def connection(request):
    yield from FACTORIES[request.param]()


class TestCloseContract:
    def test_satisfies_the_protocol(self, connection):
        assert isinstance(connection, Connection)

    def test_works_before_close(self, connection):
        assert connection.query(PROBE_SQL) is not None

    def test_double_close_is_a_no_op(self, connection):
        connection.close()
        connection.close()
        connection.close()

    def test_use_after_close_refuses_sql(self, connection):
        connection.close()
        with pytest.raises(EngineError, match="closed"):
            connection.sql(PROBE_SQL)

    def test_use_after_close_refuses_query(self, connection):
        connection.close()
        with pytest.raises(EngineError, match="closed"):
            connection.query(PROBE_SQL)

    def test_close_after_use_still_refuses(self, connection):
        connection.query(PROBE_SQL)
        connection.close()
        with pytest.raises(EngineError, match="closed"):
            connection.query(PROBE_SQL)
