"""Executor tests: the full SQL dialect against a live database."""

import pytest

from repro.util.errors import EngineError, IntegrityError


class TestSelect:
    def test_project_columns(self, tiny_db):
        result = tiny_db.query("SELECT Name, Age FROM Users")
        assert result.columns == ["Name", "Age"]
        assert ("alice", 34) in result.rows

    def test_star(self, tiny_db):
        result = tiny_db.query("SELECT * FROM Users")
        assert result.columns == ["UId", "Name", "Age"]
        assert len(result) == 3

    def test_where_equality_uses_index(self, tiny_db):
        result = tiny_db.query("SELECT Name FROM Users WHERE UId = 2")
        assert result.rows == [("bob",)]

    def test_where_range(self, tiny_db):
        result = tiny_db.query("SELECT Name FROM Users WHERE Age >= 30")
        assert result.rows == [("alice",)]

    def test_null_comparison_filters_row(self, tiny_db):
        # carol's Age is NULL; Age >= 0 is UNKNOWN, not TRUE.
        result = tiny_db.query("SELECT Name FROM Users WHERE Age >= 0")
        assert ("carol",) not in result.rows

    def test_is_null(self, tiny_db):
        result = tiny_db.query("SELECT Name FROM Users WHERE Age IS NULL")
        assert result.rows == [("carol",)]

    def test_in_list(self, tiny_db):
        result = tiny_db.query("SELECT Name FROM Users WHERE UId IN (1, 3)")
        assert sorted(result.rows) == [("alice",), ("carol",)]

    def test_not_in_with_null_value(self, tiny_db):
        # NULL NOT IN (...) is UNKNOWN → row filtered.
        result = tiny_db.query("SELECT Name FROM Users WHERE Age NOT IN (28)")
        assert sorted(result.rows) == [("alice",)]

    def test_join_on(self, tiny_db):
        result = tiny_db.query(
            "SELECT u.Name, o.Total FROM Users u JOIN Orders o ON o.UId = u.UId"
            " WHERE o.Total > 50"
        )
        assert sorted(result.rows) == [("alice", 99.5), ("bob", 55.25)]

    def test_comma_join_with_where(self, tiny_db):
        result = tiny_db.query(
            "SELECT u.Name FROM Users u, Orders o WHERE o.UId = u.UId AND o.OId = 12"
        )
        assert result.rows == [("bob",)]

    def test_left_join_preserves_unmatched(self, tiny_db):
        result = tiny_db.query(
            "SELECT u.Name, o.OId FROM Users u LEFT JOIN Orders o ON o.UId = u.UId"
        )
        assert ("carol", None) in result.rows

    def test_order_by_desc(self, tiny_db):
        result = tiny_db.query("SELECT Name FROM Users ORDER BY Age DESC")
        # NULL sorts first ascending, hence last on DESC.
        assert result.rows == [("alice",), ("bob",), ("carol",)]

    def test_order_by_multi_key(self, tiny_db):
        result = tiny_db.query(
            "SELECT UId, OId FROM Orders ORDER BY UId ASC, OId DESC"
        )
        assert result.rows == [(1, 11), (1, 10), (2, 12)]

    def test_limit(self, tiny_db):
        result = tiny_db.query("SELECT UId FROM Users ORDER BY UId LIMIT 2")
        assert result.rows == [(1,), (2,)]

    def test_distinct(self, tiny_db):
        result = tiny_db.query("SELECT DISTINCT UId FROM Orders")
        assert sorted(result.rows) == [(1,), (2,)]

    def test_count_star(self, tiny_db):
        assert tiny_db.query("SELECT COUNT(*) FROM Orders").scalar() == 3

    def test_count_column_skips_null(self, tiny_db):
        assert tiny_db.query("SELECT COUNT(Note) FROM Orders").scalar() == 2

    def test_count_distinct(self, tiny_db):
        assert tiny_db.query("SELECT COUNT(DISTINCT UId) FROM Orders").scalar() == 2

    def test_select_literal(self, tiny_db):
        result = tiny_db.query("SELECT 1 FROM Users WHERE UId = 1")
        assert result.rows == [(1,)]

    def test_ambiguous_column_rejected(self, tiny_db):
        with pytest.raises(EngineError):
            tiny_db.query("SELECT UId FROM Users u, Orders o")

    def test_unknown_alias_rejected(self, tiny_db):
        with pytest.raises(EngineError):
            tiny_db.query("SELECT zz.Name FROM Users u")

    def test_parameters_bound(self, tiny_db):
        result = tiny_db.query("SELECT Name FROM Users WHERE UId = ?", [2])
        assert result.rows == [("bob",)]

    def test_named_parameters_bound(self, tiny_db):
        result = tiny_db.query(
            "SELECT Name FROM Users WHERE UId = ?U", named={"U": 3}
        )
        assert result.rows == [("carol",)]


class TestDml:
    def test_insert_full_row(self, tiny_db):
        count = tiny_db.sql("INSERT INTO Users VALUES (4, 'dave', 41)")
        assert count == 1
        assert tiny_db.row_count("Users") == 4

    def test_insert_column_subset_defaults_null(self, tiny_db):
        tiny_db.sql("INSERT INTO Users (UId, Name) VALUES (5, 'erin')")
        result = tiny_db.query("SELECT Age FROM Users WHERE UId = 5")
        assert result.rows == [(None,)]

    def test_insert_fk_violation(self, tiny_db):
        with pytest.raises(IntegrityError):
            tiny_db.sql("INSERT INTO Orders VALUES (20, 99, 1.0, NULL)")

    def test_insert_null_fk_allowed(self, tiny_db):
        # FK columns accept NULL (no reference asserted) if nullable...
        # Orders.UId is NOT NULL, so this still fails on nullability.
        with pytest.raises(IntegrityError):
            tiny_db.sql("INSERT INTO Orders VALUES (20, NULL, 1.0, NULL)")

    def test_update_with_where(self, tiny_db):
        count = tiny_db.sql("UPDATE Users SET Age = 35 WHERE UId = 1")
        assert count == 1
        assert tiny_db.query("SELECT Age FROM Users WHERE UId = 1").scalar() == 35

    def test_update_expression_over_row(self, tiny_db):
        tiny_db.sql("UPDATE Users SET Age = Age + 1 WHERE UId = 2")
        assert tiny_db.query("SELECT Age FROM Users WHERE UId = 2").scalar() == 29

    def test_update_fk_checked(self, tiny_db):
        with pytest.raises(IntegrityError):
            tiny_db.sql("UPDATE Orders SET UId = 99 WHERE OId = 10")

    def test_delete_with_where(self, tiny_db):
        count = tiny_db.sql("DELETE FROM Orders WHERE UId = 1")
        assert count == 2
        assert tiny_db.row_count("Orders") == 1

    def test_delete_all(self, tiny_db):
        assert tiny_db.sql("DELETE FROM Orders") == 3


class TestResult:
    def test_scalar_requires_1x1(self, tiny_db):
        with pytest.raises(EngineError):
            tiny_db.query("SELECT UId, Name FROM Users").scalar()

    def test_is_empty_and_first(self, tiny_db):
        empty = tiny_db.query("SELECT Name FROM Users WHERE UId = 999")
        assert empty.is_empty()
        assert empty.first() is None

    def test_as_dicts(self, tiny_db):
        rows = tiny_db.query("SELECT UId, Name FROM Users WHERE UId = 1").as_dicts()
        assert rows == [{"UId": 1, "Name": "alice"}]
