"""Expression-evaluator unit tests, including the 3VL truth tables."""

import pytest

from repro.engine.evaluator import evaluate, predicate_holds
from repro.sqlir.parser import parse_expression
from repro.util.errors import EngineError


def ev(expr_sql, env=None):
    return evaluate(parse_expression(expr_sql), env or {})


class TestLiteralsAndColumns:
    def test_literals(self):
        assert ev("5") == 5
        assert ev("2.5") == 2.5
        assert ev("'x'") == "x"
        assert ev("TRUE") is True
        assert ev("NULL") is None

    def test_column_lookup(self):
        env = {("t", "a"): 7}
        assert evaluate(parse_expression("t.a"), env) == 7

    def test_unresolved_column_rejected(self):
        with pytest.raises(EngineError):
            ev("bare_column")

    def test_unbound_param_rejected(self):
        with pytest.raises(EngineError):
            ev("?")


class TestThreeValuedLogic:
    """SQL's Kleene tables: None stands for UNKNOWN."""

    @pytest.mark.parametrize(
        ("sql", "expected"),
        [
            ("NULL = 1", None),
            ("NULL <> 1", None),
            ("NULL < 1", None),
            ("1 = 1 AND NULL = 1", None),
            ("1 = 2 AND NULL = 1", False),
            ("1 = 1 OR NULL = 1", True),
            ("1 = 2 OR NULL = 1", None),
            ("NOT (NULL = 1)", None),
            ("NULL IS NULL", True),
            ("NULL IS NOT NULL", False),
            ("1 IS NULL", False),
            ("NULL IN (1, 2)", None),
            ("1 IN (1, NULL)", True),
            ("3 IN (1, NULL)", None),  # might match the unknown item
            ("3 NOT IN (1, 2)", True),
            ("3 NOT IN (1, NULL)", None),
        ],
    )
    def test_truth_table(self, sql, expected):
        assert ev(sql) is expected or ev(sql) == expected

    def test_predicate_holds_requires_true(self):
        assert predicate_holds(parse_expression("1 = 1"), {})
        assert not predicate_holds(parse_expression("NULL = 1"), {})
        assert not predicate_holds(parse_expression("1 = 2"), {})

    def test_null_arithmetic_propagates(self):
        assert ev("1 + NULL") is None
        assert ev("NULL * 2") is None


class TestArithmetic:
    def test_operations(self):
        assert ev("2 + 3 * 4") == 14
        assert ev("10 / 4") == 2.5
        assert ev("7 - 2") == 5

    def test_division_by_zero(self):
        with pytest.raises(EngineError):
            ev("1 / 0")

    def test_non_numeric_arithmetic_rejected(self):
        with pytest.raises(EngineError):
            ev("'a' + 1")


class TestComparisons:
    def test_numeric_cross_type(self):
        assert ev("1 < 1.5") is True

    def test_string_ordering(self):
        assert ev("'a' < 'b'") is True

    def test_incomparable_types_rejected(self):
        with pytest.raises(EngineError):
            ev("'a' < 1")

    def test_equality_across_types_is_false(self):
        assert ev("'1' = 1") is False
