"""EXISTS-subquery tests: parsing, execution, and RLS integration."""

import pytest

from repro.enforce import EnforcementProxy, PolicyViolation, Session
from repro.enforce.baselines import RowLevelSecurityProxy
from repro.relalg.translate import translate_select
from repro.sqlir import ast
from repro.sqlir.params import bind_parameters, collect_parameters
from repro.sqlir.parser import parse_select, parse_sql
from repro.sqlir.printer import to_sql
from repro.util.errors import EngineError, TranslationError
from repro.workloads import calendar_app


class TestParsing:
    def test_exists_parses(self):
        stmt = parse_select(
            "SELECT Title FROM Events e WHERE EXISTS"
            " (SELECT 1 FROM Attendance a WHERE a.EId = e.EId)"
        )
        assert isinstance(stmt.where, ast.Exists)

    def test_not_exists(self):
        stmt = parse_select(
            "SELECT 1 FROM Events e WHERE NOT EXISTS"
            " (SELECT 1 FROM Attendance a WHERE a.EId = e.EId)"
        )
        assert isinstance(stmt.where, ast.Not)
        assert isinstance(stmt.where.operand, ast.Exists)

    def test_roundtrip(self):
        sql = (
            "SELECT Title FROM Events e WHERE EXISTS"
            " (SELECT 1 FROM Attendance a WHERE a.EId = e.EId AND a.UId = ?MyUId)"
        )
        assert parse_sql(to_sql(parse_sql(sql))) == parse_sql(sql)

    def test_params_collected_inside_subquery(self):
        stmt = parse_select(
            "SELECT 1 FROM Events e WHERE EXISTS"
            " (SELECT 1 FROM Attendance a WHERE a.UId = ? AND a.EId = ?X)"
        )
        positional, named = collect_parameters(stmt)
        assert positional == [0]
        assert named == ["X"]

    def test_binding_reaches_subquery(self):
        stmt = parse_select(
            "SELECT 1 FROM Events e WHERE EXISTS"
            " (SELECT 1 FROM Attendance a WHERE a.UId = ?)"
        )
        bound = bind_parameters(stmt, [7])
        assert "a.UId = 7" in to_sql(bound)


class TestExecution:
    def test_correlated_exists(self, calendar_db):
        rows = calendar_db.query(
            "SELECT e.EId FROM Events e WHERE EXISTS"
            " (SELECT 1 FROM Attendance a WHERE a.EId = e.EId AND a.UId = ?)",
            [1],
        ).rows
        expected = {
            (eid,)
            for (eid,) in calendar_db.query(
                "SELECT EId FROM Attendance WHERE UId = 1"
            ).rows
        }
        assert set(rows) == expected

    def test_not_exists(self, calendar_db):
        with_attendees = {
            r[0] for r in calendar_db.query("SELECT EId FROM Attendance").rows
        }
        rows = calendar_db.query(
            "SELECT e.EId FROM Events e WHERE NOT EXISTS"
            " (SELECT 1 FROM Attendance a WHERE a.EId = e.EId)"
        ).rows
        assert {r[0] for r in rows}.isdisjoint(with_attendees)

    def test_uncorrelated_exists(self, calendar_db):
        count = calendar_db.query(
            "SELECT COUNT(*) FROM Events e WHERE EXISTS"
            " (SELECT 1 FROM Users u WHERE u.UId = 1)"
        ).scalar()
        assert count == calendar_db.row_count("Events")

    def test_unknown_alias_in_subquery(self, calendar_db):
        with pytest.raises(EngineError):
            calendar_db.query(
                "SELECT 1 FROM Events e WHERE EXISTS"
                " (SELECT 1 FROM Attendance a WHERE a.EId = zz.EId)"
            )


class TestBoundaries:
    def test_translator_rejects_exists(self, calendar_schema):
        stmt = parse_select(
            "SELECT Title FROM Events e WHERE EXISTS"
            " (SELECT 1 FROM Attendance a WHERE a.EId = e.EId)"
        )
        with pytest.raises(TranslationError):
            translate_select(stmt, calendar_schema)

    def test_proxy_blocks_exists_queries(self, calendar_db, calendar_policy):
        proxy = EnforcementProxy(calendar_db, calendar_policy, Session.for_user(1))
        with pytest.raises(PolicyViolation) as err:
            proxy.query(
                "SELECT Title FROM Events e WHERE EXISTS"
                " (SELECT 1 FROM Attendance a WHERE a.EId = e.EId AND a.UId = 1)"
            )
        assert "fragment" in err.value.decision.reason


class TestRlsWithExists:
    def test_events_filtered_to_attended(self, calendar_db):
        app = calendar_app.make_app()
        rls = RowLevelSecurityProxy(calendar_db, app.rls_predicates, {"MyUId": 1})
        mine = {
            r[0]
            for r in calendar_db.query(
                "SELECT EId FROM Attendance WHERE UId = 1"
            ).rows
        }
        rows = rls.query("SELECT EId FROM Events").rows
        assert {r[0] for r in rows} == mine
