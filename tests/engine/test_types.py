"""Column-type checking tests."""

import pytest

from repro.engine.types import ColumnType, check_value
from repro.util.errors import IntegrityError


class TestFromSql:
    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("INT", ColumnType.INT),
            ("integer", ColumnType.INT),
            ("TEXT", ColumnType.TEXT),
            ("VARCHAR", ColumnType.TEXT),
            ("REAL", ColumnType.REAL),
            ("float", ColumnType.REAL),
            ("BOOLEAN", ColumnType.BOOL),
        ],
    )
    def test_known_names(self, name, expected):
        assert ColumnType.from_sql(name) is expected

    def test_unknown_name(self):
        with pytest.raises(IntegrityError):
            ColumnType.from_sql("BLOB")


class TestCheckValue:
    def test_null_passes_all_types(self):
        for column_type in ColumnType:
            assert check_value(None, column_type, "c") is None

    def test_int_accepts_int(self):
        assert check_value(5, ColumnType.INT, "c") == 5

    def test_int_rejects_bool(self):
        with pytest.raises(IntegrityError):
            check_value(True, ColumnType.INT, "c")

    def test_int_rejects_float(self):
        with pytest.raises(IntegrityError):
            check_value(1.5, ColumnType.INT, "c")

    def test_real_widens_int(self):
        value = check_value(5, ColumnType.REAL, "c")
        assert value == 5.0
        assert isinstance(value, float)

    def test_text_rejects_number(self):
        with pytest.raises(IntegrityError):
            check_value(5, ColumnType.TEXT, "c")

    def test_bool_accepts_bool_only(self):
        assert check_value(True, ColumnType.BOOL, "c") is True
        with pytest.raises(IntegrityError):
            check_value(1, ColumnType.BOOL, "c")
