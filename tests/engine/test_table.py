"""Row-storage tests: inserts, indexes, deletes, snapshots."""

import pytest

from repro.engine import Column, ColumnType, TableSchema
from repro.engine.table import Table
from repro.util.errors import IntegrityError


@pytest.fixture
def table():
    return Table(
        TableSchema(
            "T",
            (
                Column("id", ColumnType.INT, nullable=False),
                Column("name", ColumnType.TEXT),
            ),
            primary_key=("id",),
        )
    )


class TestInsert:
    def test_insert_and_iterate_in_order(self, table):
        table.insert((1, "a"))
        table.insert((2, "b"))
        assert list(table.rows()) == [(1, "a"), (2, "b")]

    def test_wrong_width_rejected(self, table):
        with pytest.raises(IntegrityError):
            table.insert((1,))

    def test_type_checked(self, table):
        with pytest.raises(IntegrityError):
            table.insert(("x", "a"))

    def test_not_null_enforced(self, table):
        with pytest.raises(IntegrityError):
            table.insert((None, "a"))

    def test_null_allowed_when_nullable(self, table):
        table.insert((1, None))
        assert list(table.rows()) == [(1, None)]

    def test_duplicate_pk_rejected(self, table):
        table.insert((1, "a"))
        with pytest.raises(IntegrityError):
            table.insert((1, "b"))


class TestLookup:
    def test_index_lookup(self, table):
        table.insert((1, "a"))
        table.insert((2, "a"))
        table.insert((3, "b"))
        rows = [row for _, row in table.lookup("name", "a")]
        assert rows == [(1, "a"), (2, "a")]

    def test_lookup_miss(self, table):
        table.insert((1, "a"))
        assert list(table.lookup("name", "zzz")) == []

    def test_contains_value(self, table):
        table.insert((1, "a"))
        assert table.contains_value("id", 1)
        assert not table.contains_value("id", 99)


class TestDeleteUpdate:
    def test_delete_updates_indexes(self, table):
        row_id = table.insert((1, "a"))
        assert table.delete_ids([row_id]) == 1
        assert not table.contains_value("id", 1)
        assert len(table) == 0

    def test_delete_frees_pk(self, table):
        row_id = table.insert((1, "a"))
        table.delete_ids([row_id])
        table.insert((1, "again"))

    def test_update_in_place(self, table):
        row_id = table.insert((1, "a"))
        table.update_id(row_id, (1, "z"))
        assert list(table.rows()) == [(1, "z")]
        assert [row for _, row in table.lookup("name", "z")] == [(1, "z")]

    def test_update_missing_row(self, table):
        with pytest.raises(IntegrityError):
            table.update_id(99, (1, "a"))


class TestSnapshot:
    def test_snapshot_restore(self, table):
        table.insert((1, "a"))
        snapshot = table.snapshot()
        table.insert((2, "b"))
        table.restore(snapshot)
        assert list(table.rows()) == [(1, "a")]
        # Indexes rebuilt correctly.
        assert table.contains_value("id", 1)
        assert not table.contains_value("id", 2)

    def test_restore_then_insert_does_not_collide(self, table):
        table.insert((1, "a"))
        snapshot = table.snapshot()
        table.insert((2, "b"))
        table.restore(snapshot)
        table.insert((3, "c"))
        assert [row[0] for row in table.rows()] == [1, 3]
