"""GROUP BY and aggregate-function tests."""

import pytest

from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select, parse_sql
from repro.sqlir.printer import to_sql
from repro.util.errors import EngineError, TranslationError
from repro.workloads import employees


@pytest.fixture
def db(employees_db):
    return employees_db


class TestParsing:
    def test_group_by_parses_and_roundtrips(self):
        sql = "SELECT Dept, COUNT(*) FROM Employees GROUP BY Dept ORDER BY Dept"
        assert to_sql(parse_sql(to_sql(parse_sql(sql)))) == to_sql(parse_sql(sql))

    def test_aggregate_functions_parse(self):
        stmt = parse_select("SELECT SUM(Salary), AVG(Age), MIN(Age), MAX(Age) FROM Employees")
        names = [item.expr.name for item in stmt.items]
        assert names == ["SUM", "AVG", "MIN", "MAX"]

    def test_group_by_rejected_by_translator(self, db):
        stmt = parse_select("SELECT Dept FROM Employees GROUP BY Dept")
        with pytest.raises(TranslationError):
            translate_select(stmt, db.schema)


class TestGlobalAggregates:
    def test_sum(self, db):
        total = db.query("SELECT SUM(Salary) FROM Employees").scalar()
        rows = db.query("SELECT Salary FROM Employees").rows
        assert total == sum(r[0] for r in rows)

    def test_min_max(self, db):
        ages = [r[0] for r in db.query("SELECT Age FROM Employees").rows]
        assert db.query("SELECT MIN(Age) FROM Employees").scalar() == min(ages)
        assert db.query("SELECT MAX(Age) FROM Employees").scalar() == max(ages)

    def test_avg(self, db):
        ages = [r[0] for r in db.query("SELECT Age FROM Employees").rows]
        assert db.query("SELECT AVG(Age) FROM Employees").scalar() == pytest.approx(
            sum(ages) / len(ages)
        )

    def test_aggregate_over_empty_set_is_null(self, db):
        assert (
            db.query("SELECT SUM(Salary) FROM Employees WHERE Age > 200").scalar()
            is None
        )
        assert (
            db.query("SELECT COUNT(*) FROM Employees WHERE Age > 200").scalar() == 0
        )

    def test_sum_skips_null(self, tiny_db):
        # carol's Age is NULL and must not poison the sum.
        ages = tiny_db.query("SELECT SUM(Age) FROM Users").scalar()
        assert ages == 34 + 28


class TestGroupBy:
    def test_count_per_group(self, db):
        rows = db.query(
            "SELECT Dept, COUNT(*) FROM Employees GROUP BY Dept"
        ).rows
        manual: dict[str, int] = {}
        for (dept,) in db.query("SELECT Dept FROM Employees").rows:
            manual[dept] = manual.get(dept, 0) + 1
        assert dict(rows) == manual

    def test_multiple_aggregates_per_group(self, db):
        rows = db.query(
            "SELECT Dept, MIN(Age), MAX(Age) FROM Employees GROUP BY Dept"
        ).rows
        for dept, low, high in rows:
            ages = [
                r[0]
                for r in db.query(
                    "SELECT Age FROM Employees WHERE Dept = ?", [dept]
                ).rows
            ]
            assert (low, high) == (min(ages), max(ages))

    def test_group_by_with_where(self, db):
        rows = db.query(
            "SELECT Dept, COUNT(*) FROM Employees WHERE Age >= 40 GROUP BY Dept"
        ).rows
        for dept, count in rows:
            expected = db.query(
                "SELECT COUNT(*) FROM Employees WHERE Dept = ? AND Age >= 40",
                [dept],
            ).scalar()
            assert count == expected

    def test_order_by_group_key(self, db):
        rows = db.query(
            "SELECT Dept, COUNT(*) FROM Employees GROUP BY Dept ORDER BY Dept"
        ).rows
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)

    def test_group_by_join(self, calendar_db):
        rows = calendar_db.query(
            "SELECT u.Name, COUNT(*) FROM Users u"
            " JOIN Attendance a ON a.UId = u.UId GROUP BY u.Name"
        ).rows
        for name, count in rows:
            expected = calendar_db.query(
                "SELECT COUNT(*) FROM Users u JOIN Attendance a ON a.UId = u.UId"
                " WHERE u.Name = ?",
                [name],
            ).scalar()
            assert count == expected

    def test_non_grouped_column_rejected(self, db):
        # Strictness is a memory-engine semantic; SQLite legitimately
        # permits bare columns in an aggregate query (it picks a witness
        # row), so under REPRO_BACKEND=sqlite there is nothing to reject.
        if db.backend_name != "memory":
            pytest.skip("bare-column GROUP BY strictness is memory-engine-specific")
        with pytest.raises(EngineError):
            db.query("SELECT Name, COUNT(*) FROM Employees GROUP BY Dept")

    def test_count_distinct_in_group(self, db):
        rows = db.query(
            "SELECT Dept, COUNT(DISTINCT ZIP) FROM Employees GROUP BY Dept"
        ).rows
        for dept, count in rows:
            zips = {
                r[0]
                for r in db.query(
                    "SELECT ZIP FROM Employees WHERE Dept = ?", [dept]
                ).rows
            }
            assert count == len(zips)


class TestHaving:
    def test_having_filters_groups(self, db):
        rows = db.query(
            "SELECT Dept, COUNT(*) FROM Employees GROUP BY Dept"
            " HAVING COUNT(*) >= 5"
        ).rows
        all_counts = dict(
            db.query("SELECT Dept, COUNT(*) FROM Employees GROUP BY Dept").rows
        )
        assert dict(rows) == {d: c for d, c in all_counts.items() if c >= 5}

    def test_having_over_group_key(self, db):
        rows = db.query(
            "SELECT Dept, COUNT(*) FROM Employees GROUP BY Dept"
            " HAVING Dept = 'eng'"
        ).rows
        assert [r[0] for r in rows] in ([], ["eng"]) or all(
            r[0] == "eng" for r in rows
        )

    def test_having_with_avg(self, db):
        rows = db.query(
            "SELECT Dept, AVG(Age) FROM Employees GROUP BY Dept"
            " HAVING AVG(Age) >= 40"
        ).rows
        for _, avg_age in rows:
            assert avg_age >= 40

    def test_having_roundtrips(self):
        sql = (
            "SELECT Dept, COUNT(*) FROM Employees GROUP BY Dept"
            " HAVING COUNT(*) >= 5"
        )
        assert parse_sql(to_sql(parse_sql(sql))) == parse_sql(sql)
