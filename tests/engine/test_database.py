"""Database-level tests: sql() entry point, snapshots, bulk inserts."""

import pytest

from repro.engine import Database, Schema
from repro.util.errors import EngineError, IntegrityError


class TestSqlEntryPoint:
    def test_create_table_via_sql(self):
        db = Database(Schema())
        db.sql("CREATE TABLE T (id INTEGER PRIMARY KEY, name TEXT)")
        db.sql("INSERT INTO T VALUES (1, 'x')")
        assert db.query("SELECT name FROM T").rows == [("x",)]

    def test_statement_cache_reuses_parse(self, tiny_db):
        sql = "SELECT Name FROM Users WHERE UId = ?"
        tiny_db.query(sql, [1])
        cached = tiny_db._statement_cache[sql]
        tiny_db.query(sql, [2])
        assert tiny_db._statement_cache[sql] is cached

    def test_query_rejects_dml(self, tiny_db):
        with pytest.raises(EngineError):
            tiny_db.query("DELETE FROM Orders")

    def test_unknown_table(self, tiny_db):
        with pytest.raises(EngineError):
            tiny_db.query("SELECT 1 FROM Missing")


class TestBulkInsert:
    def test_insert_rows(self, tiny_db):
        count = tiny_db.insert_rows("Users", [(7, "gina", 20), (8, "hank", 21)])
        assert count == 2
        assert tiny_db.row_count("Users") == 5

    def test_insert_rows_checks_fk(self, tiny_db):
        with pytest.raises(IntegrityError):
            tiny_db.insert_rows("Orders", [(30, 999, 1.0, None)])


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, tiny_db):
        snapshot = tiny_db.snapshot()
        tiny_db.sql("DELETE FROM Orders")
        tiny_db.sql("UPDATE Users SET Name = 'zz' WHERE UId = 1")
        tiny_db.restore(snapshot)
        assert tiny_db.row_count("Orders") == 3
        assert tiny_db.query("SELECT Name FROM Users WHERE UId = 1").scalar() == "alice"

    def test_snapshot_is_isolated(self, tiny_db):
        snapshot = tiny_db.snapshot()
        tiny_db.sql("INSERT INTO Users VALUES (9, 'new', 1)")
        # The snapshot taken before the insert must not contain the row.
        tiny_db.restore(snapshot)
        assert tiny_db.row_count("Users") == 3


class TestIntrospection:
    def test_relation_contents(self, tiny_db):
        contents = tiny_db.relation_contents()
        assert set(contents) == {"Users", "Orders"}
        assert (1, "alice", 34) in contents["Users"]

    def test_total_rows(self, tiny_db):
        assert tiny_db.total_rows() == 6
