"""CheckerPool: pooled checks agree with in-process checking, survive
worker death, and ship session traces as incremental deltas.

The pool (``repro.serve.pool``) is a pure execution offload — where a
check runs must never change what it decides. These tests compare pooled
decisions against the in-process checker (including history-dependent
flows, where correctness hinges on the trace-delta replay reproducing
the parent's fact list order), then exercise the failure paths the
gateway's fallback depends on.
"""

from __future__ import annotations

import pytest

from repro.enforce import PolicyViolation
from repro.enforce.checker import ComplianceChecker
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.relalg.cq import Atom, Const
from repro.relalg.translate import translate_select
from repro.serve import CheckerPool, CheckerPoolError, EnforcementGateway, GatewayConfig
from repro.serve.pool import _TraceReplica
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app


def bound(sql, args=()):
    return bind_parameters(parse_select(sql), args)


def fact(uid, eid):
    return Atom("Attendance", (Const(uid), Const(eid)))


class TestTraceReplica:
    def test_replays_adds_and_refreshes_in_order(self):
        replica = _TraceReplica()
        replica.apply([("add", fact(1, 2)), ("add", fact(1, 3))])
        assert replica.facts == (fact(1, 2), fact(1, 3))
        # Refresh moves to the end — the recency order the checker's
        # most-recent-facts selection depends on.
        replica.apply([("refresh", fact(1, 2))])
        assert replica.facts == (fact(1, 3), fact(1, 2))
        assert replica.applied == 3

    def test_tracks_a_real_trace_exactly(self, calendar_schema):
        trace = Trace()
        replica = _TraceReplica()
        for uid, eid in [(1, 2), (1, 3), (1, 2), (2, 2)]:
            guard = translate_select(
                bound("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid]),
                calendar_schema,
            ).disjuncts[0]
            trace.record("guard", guard, Result(columns=["c"], rows=[(1,)]))
            replica.apply(trace.events[replica.applied :])
            assert replica.facts == tuple(trace.facts)
        assert replica.applied == len(trace.events)
        assert replica.relevant_facts({"Attendance"}) == list(trace.facts)
        assert replica.relevant_facts({"Events"}) == []


@pytest.fixture
def pool(calendar_schema, calendar_policy):
    pool = CheckerPool(calendar_schema, calendar_policy, workers=1)
    yield pool
    pool.close()


QUERIES = [
    ("SELECT EId FROM Attendance WHERE UId = ?", [1]),
    ("SELECT Title, Loc FROM Events WHERE EId = ?", [2]),
    ("SELECT Name FROM Users WHERE UId = ?", [1]),
    ("SELECT * FROM Events", []),
    ("SELECT Name FROM Users WHERE UId = ?", [2]),
]


class TestPooledDecisionsAgree:
    def test_history_free_checks_match_in_process(
        self, pool, calendar_schema, calendar_policy
    ):
        checker = ComplianceChecker(calendar_schema, calendar_policy)
        for sql, args in QUERIES:
            stmt = bound(sql, args)
            local = checker.check(stmt, {"MyUId": 1})
            pooled = pool.check(token=1, bindings={"MyUId": 1}, stmt=stmt, trace=None)
            assert pooled.allowed == local.allowed, sql
            assert pooled.reason == local.reason, sql
        assert pool.stats()["tasks_dispatched"] == len(QUERIES)
        assert pool.stats()["errors"] == 0

    def test_history_dependent_check_uses_shipped_deltas(
        self, pool, calendar_schema, calendar_policy
    ):
        checker = ComplianceChecker(calendar_schema, calendar_policy)
        fetch = bound("SELECT Title, Loc FROM Events WHERE EId = ?", [2])
        bindings = {"MyUId": 1}
        # Without history the fetch is blocked — in-process and pooled alike.
        assert not checker.check(fetch, bindings).allowed
        assert not pool.check(7, bindings, fetch, Trace()).allowed
        # Certify attendance of event 2 into the trace; now both allow.
        trace = Trace()
        guard = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [1, 2]),
            calendar_schema,
        ).disjuncts[0]
        trace.record("guard", guard, Result(columns=["c"], rows=[(1,)]))
        local = checker.check(fetch, bindings, trace)
        pooled = pool.check(8, bindings, fetch, trace)
        assert local.allowed
        assert pooled.allowed == local.allowed
        assert pooled.reason == local.reason

    def test_cursor_advances_and_ships_only_new_events(
        self, pool, calendar_schema
    ):
        trace = Trace()
        bindings = {"MyUId": 1}
        stmt = bound("SELECT EId FROM Attendance WHERE UId = ?", [1])
        pool.check(5, bindings, stmt, trace)
        assert pool._cursors[(0, 5)] == 0
        guard = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [1, 2]),
            calendar_schema,
        ).disjuncts[0]
        trace.record("guard", guard, Result(columns=["c"], rows=[(1,)]))
        pool.check(5, bindings, stmt, trace)
        # The worker has now applied exactly the trace's event log; the
        # next check for this session ships zero events.
        assert pool._cursors[(0, 5)] == len(trace.events)
        pool.check(5, bindings, stmt, trace)
        assert pool._cursors[(0, 5)] == len(trace.events)


class TestPooledCompilation:
    """Workers compile the policy at spawn and template their own decisions."""

    def test_repeat_checks_hit_worker_templates(self, pool, calendar_schema, calendar_policy):
        stmt = bound("SELECT EId FROM Attendance WHERE UId = ?", [1])
        first = pool.check(1, {"MyUId": 1}, stmt, None)
        second = pool.check(1, {"MyUId": 1}, stmt, None)
        assert first.allowed and second.allowed
        stats = pool.stats()
        assert stats["compiled_hits"] >= 1
        assert stats["compiled_templates"] >= 1
        # The templated decision agrees with an in-process full check.
        local = ComplianceChecker(calendar_schema, calendar_policy).check(
            stmt, {"MyUId": 1}
        )
        assert second.allowed == local.allowed

    def test_allow_compiled_false_is_honored_across_the_wire(self, pool):
        stmt = bound("SELECT EId FROM Attendance WHERE UId = ?", [1])
        pool.check(1, {"MyUId": 1}, stmt, None)  # learns the template
        hits_before = pool.stats()["compiled_hits"]
        verify = pool.check(1, {"MyUId": 1}, stmt, None, allow_compiled=False)
        assert verify.allowed
        assert pool.stats()["compiled_hits"] == hits_before

    def test_uncompiled_pool_has_no_template_counters(
        self, calendar_schema, calendar_policy
    ):
        pool = CheckerPool(
            calendar_schema, calendar_policy, workers=1, compile_checks=False
        )
        try:
            stmt = bound("SELECT EId FROM Attendance WHERE UId = ?", [1])
            pool.check(1, {"MyUId": 1}, stmt, None)
            pool.check(1, {"MyUId": 1}, stmt, None)
            assert "compiled_hits" not in pool.stats()
        finally:
            pool.close()

    def test_pooled_gateway_surfaces_compiled_counters(self, calendar_policy):
        db = calendar_app.make_database(size=10, seed=3)
        gateway = EnforcementGateway(
            db,
            calendar_policy,
            GatewayConfig(cache_mode="none", check_workers=1),
        )
        try:
            connection = gateway.connect(1)
            connection.query("SELECT EId FROM Attendance WHERE UId = 1")
            connection.query("SELECT EId FROM Attendance WHERE UId = 1")
            counters = gateway.snapshot().counters
            assert counters["pool_compiled_hits"] >= 1
        finally:
            gateway.close()


class TestFailureContainment:
    def test_worker_error_raises_and_resyncs_cursor(self, pool):
        trace = Trace()
        # Corrupt the parent-side cursor: the worker's replica is at 0,
        # so it must refuse the check rather than use a wrong fact list.
        pool._cursors[(0, 9)] = 5
        allowed = bound("SELECT EId FROM Attendance WHERE UId = ?", [1])
        with pytest.raises(CheckerPoolError):
            pool.check(9, {"MyUId": 1}, allowed, trace)
        assert pool.stats()["errors"] == 1
        # The error reply carried the worker's true cursor; the parent
        # resynchronized and the pool is serviceable again.
        assert pool._cursors[(0, 9)] == 0
        ok = pool.check(9, {"MyUId": 1}, allowed, trace)
        assert ok.allowed

    def test_dead_worker_is_respawned_transparently(self, pool):
        pool._handles[0].process.terminate()
        pool._handles[0].process.join(timeout=5.0)
        decision = pool.check(
            1, {"MyUId": 1}, bound("SELECT EId FROM Attendance WHERE UId = ?", [1]), None
        )
        assert decision.allowed
        assert pool.stats()["worker_restarts"] >= 1

    def test_restart_resets_trace_cursors(self, pool, calendar_schema):
        trace = Trace()
        guard = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [1, 2]),
            calendar_schema,
        ).disjuncts[0]
        trace.record("guard", guard, Result(columns=["c"], rows=[(1,)]))
        fetch = bound("SELECT Title, Loc FROM Events WHERE EId = ?", [2])
        assert pool.check(3, {"MyUId": 1}, fetch, trace).allowed
        assert pool._cursors[(0, 3)] == len(trace.events)
        pool._handles[0].process.terminate()
        pool._handles[0].process.join(timeout=5.0)
        # The respawned worker's replica restarts from zero; the delta
        # protocol re-syncs and the decision is unchanged.
        assert pool.check(3, {"MyUId": 1}, fetch, trace).allowed
        assert pool._cursors[(0, 3)] == len(trace.events)

    def test_closed_pool_refuses_checks(self, calendar_schema, calendar_policy):
        pool = CheckerPool(calendar_schema, calendar_policy, workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(CheckerPoolError):
            pool.check(1, {"MyUId": 1}, bound("SELECT * FROM Events"), None)

    def test_zero_workers_rejected(self, calendar_schema, calendar_policy):
        with pytest.raises(ValueError):
            CheckerPool(calendar_schema, calendar_policy, workers=0)


class TestGatewayIntegration:
    @pytest.fixture
    def pooled_gateway(self, calendar_policy):
        db = calendar_app.make_database(size=10, seed=3)
        if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
            db.sql("INSERT INTO Attendance VALUES (1, 2)")
        gateway = EnforcementGateway(
            db,
            calendar_policy,
            GatewayConfig(verify_cached_decisions=True, check_workers=1),
        )
        yield gateway
        gateway.close()

    def test_example_2_1_triple_through_the_pool(self, pooled_gateway):
        connection = pooled_gateway.connect(1)
        q1 = connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        assert not q1.is_empty()
        q2 = connection.query("SELECT * FROM Events WHERE EId = 2")
        assert not q2.is_empty()
        with pytest.raises(PolicyViolation):
            pooled_gateway.connect(1, fresh=True).query(
                "SELECT * FROM Events WHERE EId = 2"
            )
        snapshot = pooled_gateway.snapshot()
        assert pooled_gateway.metrics.counter("cache_disagreements") == 0
        assert snapshot.counters["pool_tasks_dispatched"] > 0
        assert snapshot.counters["pool_errors"] == 0
        assert pooled_gateway.metrics.counter("pool_fallbacks") == 0

    def test_snapshot_exposes_pool_and_memo_counters(self, pooled_gateway):
        pooled_gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = 1")
        counters = pooled_gateway.snapshot().counters
        assert counters["pool_workers"] == 1
        assert counters["pool_worker_restarts"] == 0
        # Worker-side memo counters surface under pool_memo_*; the local
        # process's own memo counters under memo_*.
        assert "pool_memo_containment_hits" in counters
        assert "memo_containment_hits" in counters

    def test_pool_failure_falls_back_to_in_process(
        self, pooled_gateway, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise CheckerPoolError("injected")

        monkeypatch.setattr(pooled_gateway.pool, "check", boom)
        result = pooled_gateway.connect(1).query(
            "SELECT EId FROM Attendance WHERE UId = 1"
        )
        assert result is not None
        assert pooled_gateway.metrics.counter("pool_fallbacks") == 1
