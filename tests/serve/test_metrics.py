"""LatencyHistogram bucket-boundary behavior and NetMetrics accounting."""

from __future__ import annotations

from repro.net.metrics import NetMetrics
from repro.serve.metrics import _BUCKET_BOUNDS_US, GatewayMetrics, LatencyHistogram

TOP_BOUND_US = _BUCKET_BOUNDS_US[-1]
OVERFLOW_INDEX = len(_BUCKET_BOUNDS_US)


def buckets_hit(histogram: LatencyHistogram) -> list[int]:
    return [index for index, count in enumerate(histogram._counts) if count]


class TestBucketBoundaries:
    def test_exactly_the_top_bound_lands_in_the_last_bounded_bucket(self):
        histogram = LatencyHistogram()
        histogram.observe(TOP_BOUND_US / 1e6)
        assert buckets_hit(histogram) == [OVERFLOW_INDEX - 1]

    def test_above_the_top_bound_lands_in_the_overflow_bucket(self):
        """Regression: must not be folded into the last *bounded* bucket."""
        histogram = LatencyHistogram()
        for factor in (1.0000001, 1.5, 2.0, 1000.0):
            histogram.observe(TOP_BOUND_US * factor / 1e6)
        assert buckets_hit(histogram) == [OVERFLOW_INDEX]
        assert histogram._counts[OVERFLOW_INDEX - 1] == 0

    def test_exactly_an_interior_bound_lands_in_that_bucket(self):
        for index, bound in enumerate(_BUCKET_BOUNDS_US):
            histogram = LatencyHistogram()
            histogram.observe(bound / 1e6)
            assert buckets_hit(histogram) == [index], f"bound {bound}"

    def test_just_above_an_interior_bound_moves_one_bucket_up(self):
        histogram = LatencyHistogram()
        histogram.observe((_BUCKET_BOUNDS_US[3] * 1.01) / 1e6)
        assert buckets_hit(histogram) == [4]

    def test_zero_lands_in_the_first_bucket(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0)
        assert buckets_hit(histogram) == [0]

    def test_overflow_percentile_reports_the_observed_max(self):
        histogram = LatencyHistogram()
        histogram.observe(TOP_BOUND_US * 3 / 1e6)
        assert histogram.percentile_us(99) == TOP_BOUND_US * 3

    def test_merge_preserves_overflow_counts(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        left.observe(TOP_BOUND_US * 2 / 1e6)
        right.observe(TOP_BOUND_US * 4 / 1e6)
        left.merge(right)
        assert left._counts[OVERFLOW_INDEX] == 2
        assert left.count == 2


class TestNetMetrics:
    def test_connection_gauge_tracks_open_and_close(self):
        metrics = NetMetrics()
        assert metrics.connection_opened() == 1
        assert metrics.connection_opened() == 2
        assert metrics.connection_closed() == 1
        assert metrics.active_connections == 1
        assert metrics.counter("connections_opened") == 2
        assert metrics.counter("connections_closed") == 1

    def test_in_flight_gauge(self):
        metrics = NetMetrics()
        metrics.request_started()
        metrics.request_started()
        assert metrics.in_flight == 2
        metrics.request_finished()
        assert metrics.in_flight == 1
        assert metrics.counter("requests") == 2

    def test_to_wire_is_json_shaped(self):
        import json

        metrics = NetMetrics()
        metrics.observe_request(0.001)
        metrics.increment("requests_shed")
        document = metrics.to_wire()
        assert json.loads(json.dumps(document)) == document
        assert document["counters"]["requests_shed"] == 1
        assert "net_request" in document["stages"]


class TestGatewayMetricsStillAggregate:
    def test_stage_histograms_accumulate(self):
        metrics = GatewayMetrics()
        metrics.observe_stage("check", 0.002)
        metrics.observe_stage("check", 0.004)
        snapshot = metrics.snapshot()
        assert snapshot.stages["check"]["count"] == 2.0
        assert snapshot.stages["check"]["mean_us"] == 3000.0
