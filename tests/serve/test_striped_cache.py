"""The lock-striped SharedDecisionCache facade.

The striping claim: hot reads take exactly one stripe lock, shapes route
deterministically by skeleton key, aggregate counters sum across
stripes, and writers (invalidation, clear) still evict everywhere. The
soundness of *sharing* is covered by ``test_shared_cache_race.py`` and
E11; this file pins the striping mechanics.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import EnforcementGateway, GatewayConfig
from repro.serve.cache import DEFAULT_STRIPES, SharedDecisionCache
from repro.workloads import calendar_app


@pytest.fixture
def gateway(calendar_policy):
    db = calendar_app.make_database(size=8, seed=3)
    return EnforcementGateway(db, calendar_policy, GatewayConfig())


class TestStriping:
    def test_default_stripe_count(self, calendar_policy):
        cache = SharedDecisionCache(calendar_policy)
        assert cache.stripes == DEFAULT_STRIPES
        assert len(cache._stripe_caches) == DEFAULT_STRIPES

    def test_stripe_count_is_configurable_and_validated(self, calendar_policy):
        assert SharedDecisionCache(calendar_policy, stripes=3).stripes == 3
        with pytest.raises(ValueError):
            SharedDecisionCache(calendar_policy, stripes=0)

    def test_same_shape_routes_to_one_stripe(self, gateway):
        """All parameterizations of one statement shape share a skeleton
        key, so their templates land in exactly one stripe."""
        for uid in range(1, 5):
            gateway.connect(uid).query(
                "SELECT EId FROM Attendance WHERE UId = ?", [uid]
            )
        cache = gateway.shared_cache
        populated = [s for s in cache._stripe_caches if s.size > 0]
        assert len(populated) == 1
        assert cache.size == populated[0].size

    def test_different_shapes_can_spread_across_stripes(self, gateway):
        connection = gateway.connect(1)
        shapes = [
            "SELECT EId FROM Attendance WHERE UId = ?",
            "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
            "SELECT UId, EId FROM Attendance WHERE UId = ?",
        ]
        connection.query(shapes[0], [1])
        connection.query(shapes[1], [1, 2])
        connection.query(shapes[2], [1])
        cache = gateway.shared_cache
        # Not asserting an exact spread (hash-dependent), only that the
        # facade's total equals the per-stripe sum — no template lost.
        assert cache.size == sum(s.size for s in cache._stripe_caches)
        assert cache.size >= 1

    def test_hit_and_miss_counters_sum_across_stripes(self, gateway):
        connection = gateway.connect(1)
        connection.query("SELECT EId FROM Attendance WHERE UId = ?", [1])  # miss
        connection.query("SELECT EId FROM Attendance WHERE UId = ?", [1])  # hit
        cache = gateway.shared_cache
        assert cache.hits == sum(s.hits for s in cache._stripe_caches) >= 1
        assert cache.misses == sum(s.misses for s in cache._stripe_caches) >= 1
        assert 0.0 < cache.hit_rate <= 1.0

    def test_stats_surface_stripe_fields(self, gateway):
        gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = ?", [1])
        stats = gateway.shared_cache.stats()
        assert stats["stripes"] == DEFAULT_STRIPES
        assert stats["stripe_contention"] >= 0
        assert stats["size"] >= 1

    def test_snapshot_exposes_stripe_contention_counter(self, gateway):
        gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = ?", [1])
        snapshot = gateway.snapshot()
        assert "cache_stripe_contention" in snapshot.counters


class TestWriters:
    def test_invalidate_table_visits_every_stripe(self, gateway):
        connection = gateway.connect(1)
        connection.query("SELECT EId FROM Attendance WHERE UId = ?", [1])
        connection.query("SELECT UId, EId FROM Attendance WHERE UId = ?", [1])
        cache = gateway.shared_cache
        assert cache.size >= 2
        evicted = cache.invalidate_table("Attendance")
        assert evicted >= 2
        assert cache.size == 0
        assert cache.invalidations == evicted

    def test_clear_empties_every_stripe(self, gateway):
        connection = gateway.connect(1)
        connection.query("SELECT EId FROM Attendance WHERE UId = ?", [1])
        connection.query("SELECT UId, EId FROM Attendance WHERE UId = ?", [1])
        cache = gateway.shared_cache
        dropped = cache.clear()
        assert dropped >= 2
        assert cache.size == 0
        assert all(s.size == 0 for s in cache._stripe_caches)

    def test_iter_templates_chains_all_stripes(self, gateway):
        connection = gateway.connect(1)
        connection.query("SELECT EId FROM Attendance WHERE UId = ?", [1])
        connection.query("SELECT UId, EId FROM Attendance WHERE UId = ?", [1])
        cache = gateway.shared_cache
        assert len(list(cache.iter_templates())) == cache.size


class TestContentionCounter:
    def test_contended_acquire_is_counted(self, calendar_policy):
        cache = SharedDecisionCache(calendar_policy, stripes=1)
        lock = cache._stripe_locks[0]
        lock.acquire()  # simulate another thread holding the stripe

        def blocked_acquire() -> None:
            cache._acquire(cache._stripe_locks[0])
            cache._stripe_locks[0].release()

        thread = threading.Thread(target=blocked_acquire)
        thread.start()
        # The contender must register before it can proceed.
        deadline = threading.Event()
        for _ in range(100):
            if cache.stripe_contention == 1:
                break
            deadline.wait(0.01)
        lock.release()
        thread.join()
        assert cache.stripe_contention == 1

    def test_uncontended_acquire_is_free(self, calendar_policy):
        cache = SharedDecisionCache(calendar_policy, stripes=2)
        cache._acquire(cache._stripe_locks[0])
        cache._stripe_locks[0].release()
        assert cache.stripe_contention == 0
