"""SharedDecisionCache: write-driven invalidation racing concurrent readers.

The serving claim under test: a writer evicting a table's decision
templates while N reader threads are hitting the cache must (a) never
let an exception escape any thread, (b) never leave a stale template for
the written table behind once the final invalidation completes, and
(c) never serve a decision the uncached checker would disagree with
(``verify_cached_decisions`` re-checks every hit on the spot).
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app

READERS = 6
ROUNDS = 40


@pytest.fixture
def gateway(calendar_policy):
    db = calendar_app.make_database(size=READERS + 2, seed=3)
    return EnforcementGateway(
        db, calendar_policy, GatewayConfig(verify_cached_decisions=True)
    )


def cached_tables(cache) -> set[str]:
    # Only called from quiesced moments (after the racing threads join),
    # so no stripe locks are needed for a consistent read.
    return {table for template in cache.iter_templates() for table in template.tables}


class TestInvalidationRace:
    def test_readers_race_a_writer_without_stale_survivors(self, gateway):
        start = threading.Barrier(READERS + 1)
        errors: list[BaseException] = []

        def reader(uid: int) -> None:
            try:
                connection = gateway.connect(uid)
                start.wait()
                for _ in range(ROUNDS):
                    connection.query("SELECT EId FROM Attendance WHERE UId = ?", [uid])
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        def writer() -> None:
            try:
                connection = gateway.connect(READERS + 1)
                start.wait()
                for _ in range(ROUNDS):
                    connection.sql("UPDATE Attendance SET UId = UId")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(uid,)) for uid in range(1, READERS + 1)
        ] + [threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors
        # (c) every cache hit taken during the race was re-verified against
        # the uncached checker; none may disagree.
        assert gateway.metrics.counter("cache_disagreements") == 0
        # The race exercised the store side; whether a write landed while
        # templates were live is scheduling luck, so eviction is asserted
        # deterministically below rather than for the racing writer.
        assert gateway.shared_cache.stores > 0

        # (b) a final write runs its invalidation inside the write lock;
        # afterwards no template touching the written table may survive.
        # Re-prime one template first so the write provably evicts.
        gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = ?", [1])
        assert "Attendance" in cached_tables(gateway.shared_cache)
        gateway.connect(READERS + 1).sql("UPDATE Attendance SET UId = UId")
        assert "Attendance" not in cached_tables(gateway.shared_cache)
        assert gateway.metrics.counter("templates_invalidated") > 0

    def test_eviction_is_atomic_with_respect_to_lookups(self, gateway):
        """A lookup never observes a half-evicted bucket: it either hits a
        live template or misses; both re-verify clean against the checker."""
        connection = gateway.connect(1)
        connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn() -> None:
            try:
                while not stop.is_set():
                    gateway.shared_cache.invalidate_table("Attendance")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for uid in range(2, READERS + 2):
                reader = gateway.connect(uid)
                for _ in range(ROUNDS):
                    reader.query("SELECT EId FROM Attendance WHERE UId = ?", [uid])
        finally:
            stop.set()
            churner.join()
        assert not errors, errors
        assert gateway.metrics.counter("cache_disagreements") == 0
