"""CheckBatcher: combining-lock batching over one epoch's checker.

The batcher only ever calls ``checker.check(stmt, bindings, trace)``, so
the tests drive it with small stub checkers whose blocking behavior is
scripted — the properties under test are scheduling ones: exactly one
execution per submitted check, leader inlining when uncontended,
follower relay of both results and exceptions, and the timed-out
follower self-serving instead of losing its decision.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.batch import CheckBatcher


class ScriptedChecker:
    """Counts checks; optionally blocks on a gate or raises per-stmt."""

    def __init__(self, gate=None, raise_for=frozenset()):
        self.gate = gate
        self.raise_for = raise_for
        self.calls = []
        self._lock = threading.Lock()

    def check(self, stmt, bindings, trace, skeleton=None):
        if self.gate is not None:
            self.gate.wait()
        if stmt in self.raise_for:
            raise ValueError(f"scripted failure for {stmt}")
        with self._lock:
            self.calls.append(stmt)
        return ("decision", stmt, dict(bindings))


class TestUncontended:
    def test_leader_checks_inline(self):
        batcher = CheckBatcher(ScriptedChecker())
        result = batcher.check("q1", {"MyUId": 1}, None)
        assert result == ("decision", "q1", {"MyUId": 1})
        stats = batcher.stats()
        assert stats["batches"] == 1
        assert stats["checks"] == 1
        assert stats["size_1"] == 1
        assert stats["fallbacks"] == 0

    def test_sequential_checks_never_batch(self):
        batcher = CheckBatcher(ScriptedChecker())
        for i in range(5):
            batcher.check(f"q{i}", {}, None)
        stats = batcher.stats()
        assert stats["batches"] == 5
        assert stats["size_1"] == 5


class TestContended:
    def test_every_submitted_check_is_executed_exactly_once(self):
        checker = ScriptedChecker()
        batcher = CheckBatcher(checker)
        results = {}
        errors = []

        def submit(i):
            try:
                results[i] = batcher.check(f"q{i}", {"i": i}, None)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(24)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 24
        for i, result in results.items():
            assert result == ("decision", f"q{i}", {"i": i})
        assert sorted(checker.calls) == sorted(f"q{i}" for i in range(24))
        stats = batcher.stats()
        assert stats["checks"] == 24
        assert stats["fallbacks"] == 0

    def test_queued_followers_form_batches(self):
        gate = threading.Event()
        checker = ScriptedChecker(gate=gate)
        batcher = CheckBatcher(checker)
        done = []

        def leader():
            done.append(batcher.check("leader", {}, None))

        def follower(i):
            done.append(batcher.check(f"f{i}", {}, None))

        lead = threading.Thread(target=leader)
        lead.start()
        time.sleep(0.05)  # leader is now inside check(), holding _busy
        followers = [threading.Thread(target=follower, args=(i,)) for i in range(4)]
        for t in followers:
            t.start()
        time.sleep(0.05)  # all four queued behind the busy leader
        gate.set()
        lead.join(timeout=5)
        for t in followers:
            t.join(timeout=5)
        assert len(done) == 5
        stats = batcher.stats()
        # One leader batch of 1 plus at least one drained batch; the four
        # followers landed in batches of size >= 2 unless the scheduler
        # released them one by one (then sizes sum to 5 regardless).
        assert stats["checks"] == 5
        assert stats["batches"] <= 5

    def test_follower_receives_relayed_exception(self):
        gate = threading.Event()
        checker = ScriptedChecker(gate=gate, raise_for={"poison"})
        batcher = CheckBatcher(checker)
        caught = []

        def leader():
            batcher.check("leader", {}, None)

        def follower():
            try:
                batcher.check("poison", {}, None)
            except ValueError as exc:
                caught.append(exc)

        lead = threading.Thread(target=leader)
        lead.start()
        time.sleep(0.05)
        follow = threading.Thread(target=follower)
        follow.start()
        time.sleep(0.05)
        gate.set()
        lead.join(timeout=5)
        follow.join(timeout=5)
        assert len(caught) == 1
        assert "scripted failure" in str(caught[0])


class TestFallback:
    def test_timed_out_follower_self_serves(self):
        wedge = threading.Event()

        class WedgingChecker(ScriptedChecker):
            def check(self, stmt, bindings, trace, skeleton=None):
                if stmt == "wedged":
                    wedge.wait()  # leader never returns until released
                return super().check(stmt, bindings, trace)

        checker = WedgingChecker()
        batcher = CheckBatcher(checker, timeout_s=0.2)
        follower_result = []

        leader = threading.Thread(target=batcher.check, args=("wedged", {}, None))
        leader.start()
        time.sleep(0.05)
        follower_result.append(batcher.check("urgent", {}, None))
        assert follower_result[0] == ("decision", "urgent", {})
        assert batcher.stats()["fallbacks"] == 1
        wedge.set()
        leader.join(timeout=5)


class TestHistogram:
    @pytest.mark.parametrize(
        ("size", "bucket"),
        [(1, "size_1"), (2, "size_2"), (3, "size_4"), (4, "size_4"), (5, "size_8"), (100, "size_8")],
    )
    def test_sizes_land_in_log2_buckets(self, size, bucket):
        batcher = CheckBatcher(ScriptedChecker())
        batcher._observe(size)
        assert batcher.stats()[bucket] == 1
