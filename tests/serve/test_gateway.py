"""EnforcementGateway: sessions, writes, metrics, and the workload driver."""

from __future__ import annotations

import random

import pytest

from repro.enforce import (
    DirectConnection,
    EnforcementProxy,
    PolicyViolation,
    ProxyConfig,
    Session,
)
from repro.engine import Connection, Database
from repro.serve import (
    EnforcementGateway,
    GatewayConfig,
    GatewayConnection,
    WorkloadDriver,
)
from repro.workloads import calendar_app, social


@pytest.fixture
def calendar_gateway(calendar_db, calendar_policy):
    return EnforcementGateway(
        calendar_db, calendar_policy, GatewayConfig(verify_cached_decisions=True)
    )


class TestConnectionProtocol:
    def test_every_backend_satisfies_the_protocol(self, calendar_db, calendar_policy):
        gateway = EnforcementGateway(calendar_db, calendar_policy)
        backends = [
            calendar_db,
            DirectConnection(calendar_db),
            EnforcementProxy(calendar_db, calendar_policy, Session.for_user(1)),
            gateway.connect(1),
        ]
        for backend in backends:
            assert isinstance(backend, Connection), type(backend)

    def test_closed_gateway_connection_refuses_statements(self, calendar_gateway):
        connection = calendar_gateway.connect(1)
        connection.close()
        with pytest.raises(Exception, match="closed"):
            connection.sql("SELECT EId FROM Attendance WHERE UId = 1")

    def test_database_parse_is_public_and_cached(self):
        db = calendar_app.make_database(size=5, seed=3)
        first = db.parse("SELECT EId FROM Attendance WHERE UId = 1")
        again = db.parse("SELECT EId FROM Attendance WHERE UId = 1")
        assert first is again
        # The deprecated private alias still works.
        assert db._parse("SELECT EId FROM Attendance WHERE UId = 1") is first


class TestSessions:
    def test_connect_normalizes_and_memoizes(self, calendar_gateway):
        by_id = calendar_gateway.connect(1)
        by_mapping = calendar_gateway.connect({"MyUId": 1})
        by_session = calendar_gateway.connect(Session.for_user(1))
        assert by_id is by_mapping is by_session
        assert calendar_gateway.connect(2) is not by_id
        assert calendar_gateway.metrics.counter("sessions_opened") == 2

    def test_fresh_session_has_empty_trace(self, calendar_gateway):
        returning = calendar_gateway.connect(1)
        returning.query("SELECT EId FROM Attendance WHERE UId = 1")
        assert len(returning.trace) == 1
        fresh = calendar_gateway.connect(1, fresh=True)
        assert len(fresh.trace) == 0
        assert fresh is not returning

    def test_example_2_1_triple_through_the_gateway(self, calendar_policy):
        """Q1 allowed; Q2 allowed with history, blocked in a fresh session."""
        db = calendar_app.make_database(size=10, seed=3)
        if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
            db.sql("INSERT INTO Attendance VALUES (1, 2)")
        gateway = EnforcementGateway(
            db, calendar_policy, GatewayConfig(verify_cached_decisions=True)
        )
        connection = gateway.connect(1)
        q1 = connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        assert not q1.is_empty()
        q2 = connection.query("SELECT * FROM Events WHERE EId = 2")
        assert not q2.is_empty()
        with pytest.raises(PolicyViolation):
            gateway.connect(1, fresh=True).query("SELECT * FROM Events WHERE EId = 2")
        assert gateway.metrics.counter("cache_disagreements") == 0


class TestSharedCacheThroughGateway:
    def test_one_users_decision_amortizes_for_others(self, calendar_gateway):
        calendar_gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = 1")
        assert calendar_gateway.shared_cache.hits == 0
        calendar_gateway.connect(2).query("SELECT EId FROM Attendance WHERE UId = 2")
        assert calendar_gateway.shared_cache.hits == 1
        assert calendar_gateway.metrics.counter("cache_disagreements") == 0

    def test_history_dependent_hit_requires_own_history(self, calendar_policy):
        db = calendar_app.make_database(size=10, seed=3)
        for uid, eid in ((1, 2), (4, 2)):
            if db.query(
                "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid]
            ).is_empty():
                db.sql("INSERT INTO Attendance VALUES (?, ?)", [uid, eid])
        gateway = EnforcementGateway(
            db, calendar_policy, GatewayConfig(verify_cached_decisions=True)
        )
        first = gateway.connect(1)
        first.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        first.query("SELECT * FROM Events WHERE EId = 2")  # stores the template
        # User 4 has not run the guard: the shared template must not fire.
        with pytest.raises(PolicyViolation):
            gateway.connect(4).query("SELECT * FROM Events WHERE EId = 2")
        # After the guard, the shared template serves user 4 from cache.
        other = gateway.connect(4)
        other.query("SELECT 1 FROM Attendance WHERE UId = 4 AND EId = 2")
        before = gateway.shared_cache.hits
        other.query("SELECT * FROM Events WHERE EId = 2")
        assert gateway.shared_cache.hits == before + 1
        assert gateway.metrics.counter("cache_disagreements") == 0


class TestWritesThroughGateway:
    def test_write_invalidates_templates_for_all_sessions(self, calendar_gateway):
        calendar_gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = 1")
        assert calendar_gateway.shared_cache.size == 1
        calendar_gateway.connect(2).sql("DELETE FROM Attendance WHERE UId = 2")
        assert calendar_gateway.shared_cache.size == 0
        assert calendar_gateway.metrics.counter("writes") == 1
        assert calendar_gateway.metrics.counter("templates_invalidated") == 1
        # The next identical-shape query re-checks and re-stores.
        calendar_gateway.connect(3).query("SELECT EId FROM Attendance WHERE UId = 3")
        assert calendar_gateway.shared_cache.size == 1

    def test_write_to_unrelated_table_keeps_templates(self, calendar_gateway):
        calendar_gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = 1")
        calendar_gateway.connect(1).sql("UPDATE Users SET Name = Name")
        assert calendar_gateway.shared_cache.size == 1

    def test_per_session_caches_also_invalidated(self, calendar_db, calendar_policy):
        gateway = EnforcementGateway(
            calendar_db, calendar_policy, GatewayConfig(cache_mode="per-session")
        )
        connection = gateway.connect(1)
        connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        assert connection.cache.size == 1
        gateway.connect(2).sql("DELETE FROM Attendance WHERE UId = 2")
        assert connection.cache.size == 0


class TestDriver:
    def test_replay_preserves_session_order_and_counts(self, calendar_policy):
        app = calendar_app.make_app()
        db = app.make_database(12, 3)
        gateway = EnforcementGateway(
            db, app.ground_truth_policy(), GatewayConfig(verify_cached_decisions=True)
        )
        driver = WorkloadDriver(app, gateway, workers=4, write_every=10)
        requests = app.request_stream(db, random.Random(5), 80)
        report = driver.run(requests)
        assert report.requests == 80
        assert report.completed + report.blocked + report.aborted + report.errors == 80
        assert report.errors == 0
        assert report.sessions == len({tuple(sorted(r.session.items())) for r in requests})
        assert report.metrics.counters.get("cache_disagreements", 0) == 0
        assert report.wall_seconds > 0
        assert report.throughput_rps > 0

    def test_shared_beats_per_session_on_multi_user_social(self):
        app = social.make_app()
        seed_requests = random.Random(5)
        reports = {}
        for mode in ("shared", "per-session"):
            db = app.make_database(16, 7)
            gateway = EnforcementGateway(
                db, app.ground_truth_policy(), GatewayConfig(cache_mode=mode)
            )
            driver = WorkloadDriver(app, gateway, workers=4)
            requests = app.request_stream(db, random.Random(5), 120)
            reports[mode] = driver.run(requests)
        assert reports["shared"].hit_rate > reports["per-session"].hit_rate

    def test_runner_gateway_mode(self, calendar_policy):
        from repro.workloads.runner import AppRunner

        app = calendar_app.make_app()
        db = app.make_database(10, 3)
        gateway = EnforcementGateway(db, app.ground_truth_policy())
        runner = AppRunner(app, db, mode="gateway", gateway=gateway)
        requests = app.request_stream(db, random.Random(4), 30)
        outcomes = runner.run_all(requests)
        assert len(outcomes) == 30
        assert gateway.metrics.counter("sessions_opened") > 0


class TestProxyConfigCompat:
    def test_config_object_is_the_only_construction_path(
        self, calendar_db, calendar_policy
    ):
        configured = EnforcementProxy(
            calendar_db,
            calendar_policy,
            Session.for_user(1),
            ProxyConfig(history_enabled=False, record_decisions=True),
        )
        assert not configured.checker.history_enabled
        # Read-only attribute accessors answer from the config.
        assert configured.record_decisions is True
        assert configured.cache is None
        with pytest.raises(TypeError, match="ProxyConfig"):
            EnforcementProxy(
                calendar_db,
                calendar_policy,
                Session.for_user(1),
                history_enabled=False,
                record_decisions=True,
            )

    def test_decision_log_is_a_capped_ring_buffer(self, calendar_db, calendar_policy):
        proxy = EnforcementProxy(
            calendar_db,
            calendar_policy,
            Session.for_user(1),
            ProxyConfig(record_decisions=True, decision_log_cap=5),
        )
        for _ in range(12):
            proxy.query("SELECT EId FROM Attendance WHERE UId = 1")
        assert len(proxy.stats.decisions) == 5
        assert proxy.stats.allowed == 12
        newest = proxy.stats.decisions[-1]
        assert newest.allowed

    def test_ring_overflow_counts_as_audit_dropped(
        self, calendar_db, calendar_policy
    ):
        """Clipping the decision log is never silent: the evictions show
        up per-proxy and in the gateway-wide snapshot counter."""
        proxy = EnforcementProxy(
            calendar_db,
            calendar_policy,
            Session.for_user(1),
            ProxyConfig(record_decisions=True, decision_log_cap=5),
        )
        for _ in range(12):
            proxy.query("SELECT EId FROM Attendance WHERE UId = 1")
        assert proxy.stats.audit_dropped == 7

        gateway = EnforcementGateway(
            calendar_db,
            calendar_policy,
            GatewayConfig(record_decisions=True, decision_log_cap=3),
        )
        try:
            connection = gateway.connect(1)
            for eid in range(1, 11):
                connection.query(
                    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                )
            assert gateway.snapshot().counters["audit_dropped"] == 7
        finally:
            gateway.close()


class TestCompiledGateway:
    """GatewayConfig.compile_checks / batch_checks wiring and counters."""

    def test_snapshot_exposes_compiled_and_batch_counters(
        self, calendar_db, calendar_policy
    ):
        gateway = EnforcementGateway(
            calendar_db, calendar_policy, GatewayConfig(cache_mode="none")
        )
        try:
            connection = gateway.connect(1)
            connection.query("SELECT EId FROM Attendance WHERE UId = 1")
            connection.query("SELECT EId FROM Attendance WHERE UId = 1")
            counters = gateway.snapshot().counters
            assert counters["compiled_hits"] >= 1
            assert counters["compile_misses"] >= 1
            assert counters["compiled_templates"] >= 1
            assert counters["compiled_views"] >= 1
            assert counters["batch_checks"] >= 2
            assert counters["batch_size_1"] >= 2
        finally:
            gateway.close()

    def test_compile_checks_off_reverts_to_the_generic_path(
        self, calendar_db, calendar_policy
    ):
        gateway = EnforcementGateway(
            calendar_db,
            calendar_policy,
            GatewayConfig(cache_mode="none", compile_checks=False, batch_checks=False),
        )
        try:
            connection = gateway.connect(1)
            connection.query("SELECT EId FROM Attendance WHERE UId = 1")
            counters = gateway.snapshot().counters
            assert "compiled_hits" not in counters
            assert "batch_checks" not in counters
        finally:
            gateway.close()

    def test_verification_stays_independent_of_templates(
        self, calendar_db, calendar_policy
    ):
        # verify_cached_decisions re-checks cache hits with
        # allow_compiled=False: the verifying decision must come from the
        # full path, so template counters stay untouched by verification.
        gateway = EnforcementGateway(
            calendar_db, calendar_policy, GatewayConfig(verify_cached_decisions=True)
        )
        try:
            connection = gateway.connect(1)
            connection.query("SELECT EId FROM Attendance WHERE UId = 1")
            hits_after_miss = gateway.snapshot().counters["compiled_hits"]
            connection.query("SELECT EId FROM Attendance WHERE UId = 1")  # cache hit
            counters = gateway.snapshot().counters
            assert counters["compiled_hits"] == hits_after_miss
            assert gateway.metrics.counter("cache_disagreements") == 0
        finally:
            gateway.close()

    def test_compiled_templates_agree_with_cache_templates(
        self, calendar_db, calendar_policy
    ):
        # Same statement through a cache-off compiled gateway and a
        # cache-on uncompiled gateway: identical verdicts either way.
        compiled = EnforcementGateway(
            calendar_db, calendar_policy, GatewayConfig(cache_mode="none")
        )
        generic = EnforcementGateway(
            calendar_db, calendar_policy, GatewayConfig(compile_checks=False)
        )
        try:
            for gateway in (compiled, generic):
                connection = gateway.connect(1)
                assert connection.query("SELECT EId FROM Attendance WHERE UId = 1") is not None
                with pytest.raises(PolicyViolation):
                    connection.query("SELECT * FROM Events WHERE EId = 99")
                with pytest.raises(PolicyViolation):
                    connection.query("SELECT * FROM Events WHERE EId = 99")
        finally:
            compiled.close()
            generic.close()
