"""LatencyHistogram wire round-trip (`to_stage_wire`/`from_stage_wire`).

The cluster router merges latency distributions across shard processes,
which only works if the wire form carries the raw buckets — these tests
pin that contract.
"""

from __future__ import annotations

from repro.serve.metrics import _BUCKET_BOUNDS_US, LatencyHistogram


def _histogram(samples_us) -> LatencyHistogram:
    histogram = LatencyHistogram()
    for micros in samples_us:
        histogram.observe(micros / 1e6)
    return histogram


class TestStageWire:
    def test_round_trip_preserves_buckets_and_totals(self):
        original = _histogram([3, 40, 40, 900, 15_000, 2_000_000])
        restored = LatencyHistogram.from_stage_wire(original.to_stage_wire())
        assert restored is not None
        assert restored.to_stage_wire() == original.to_stage_wire()
        assert restored.count == original.count
        assert restored.percentile_us(99) == original.percentile_us(99)

    def test_merge_across_wire_equals_direct_merge(self):
        """Shipping histograms over STATS must not lose merge fidelity."""
        left = _histogram([10, 20, 5_000])
        right = _histogram([1, 1, 400_000])
        over_wire = LatencyHistogram.from_stage_wire(left.to_stage_wire())
        over_wire.merge(LatencyHistogram.from_stage_wire(right.to_stage_wire()))
        direct = _histogram([10, 20, 5_000, 1, 1, 400_000])
        assert over_wire.to_stage_wire() == direct.to_stage_wire()

    def test_empty_histogram_round_trips(self):
        restored = LatencyHistogram.from_stage_wire(LatencyHistogram().to_stage_wire())
        assert restored is not None
        assert restored.count == 0

    def test_wire_doc_keeps_summary_fields_for_old_readers(self):
        doc = _histogram([100, 200]).to_stage_wire()
        for key in ("count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"):
            assert key in doc
        assert len(doc["buckets"]) == len(_BUCKET_BOUNDS_US) + 1

    def test_from_stage_wire_rejects_pre_bucket_documents(self):
        assert LatencyHistogram.from_stage_wire({"count": 5, "mean_us": 10.0}) is None
        wrong_width = {"count": 5, "total_s": 0.1, "buckets": [1, 2, 3]}
        assert LatencyHistogram.from_stage_wire(wrong_width) is None
