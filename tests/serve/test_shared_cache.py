"""SharedDecisionCache: cross-session safety, invalidation, thread safety."""

from __future__ import annotations

import threading

from repro.enforce.checker import ComplianceChecker
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.relalg.translate import translate_select
from repro.serve import SharedDecisionCache
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select


def bound(sql, args=()):
    return bind_parameters(parse_select(sql), list(args))


def trace_with_attendance(schema, uid, eid):
    """A trace whose session has seen its Attendance(uid, eid) row."""
    trace = Trace()
    guard = translate_select(
        bound(f"SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = {eid}"),
        schema,
    ).disjuncts[0]
    trace.record("guard", guard, Result(columns=["c"], rows=[(1,)]))
    return trace


class TestCrossSessionSafety:
    def test_history_free_template_serves_other_sessions(
        self, calendar_schema, calendar_policy
    ):
        cache = SharedDecisionCache(calendar_policy)
        checker = ComplianceChecker(calendar_schema, calendar_policy)
        stmt = bound("SELECT EId FROM Attendance WHERE UId = ?", [1])
        decision = checker.check(stmt, {"MyUId": 1})
        assert decision.allowed
        cache.store(stmt, {"MyUId": 1}, decision)
        # Another user asking about *their own* rows: same equality
        # pattern, hit.
        other = cache.lookup(
            bound("SELECT EId FROM Attendance WHERE UId = ?", [9]), {"MyUId": 9}, Trace()
        )
        assert other is not None and other.allowed
        # Another user asking about user 1's rows: pattern broken, miss.
        assert (
            cache.lookup(
                bound("SELECT EId FROM Attendance WHERE UId = ?", [1]),
                {"MyUId": 9},
                Trace(),
            )
            is None
        )

    def test_trace_dependent_template_never_leaks_across_sessions(
        self, calendar_schema, calendar_policy
    ):
        """User A's history must not allow user B's fetch (Example 2.1)."""
        cache = SharedDecisionCache(calendar_policy)
        checker = ComplianceChecker(calendar_schema, calendar_policy)
        trace_a = trace_with_attendance(calendar_schema, 1, 2)
        stmt = bound("SELECT * FROM Events WHERE EId = ?", [2])
        decision = checker.check(stmt, {"MyUId": 1}, trace_a)
        assert decision.allowed and decision.facts_used
        cache.store(stmt, {"MyUId": 1}, decision)

        # Same query shape from a session with an empty trace: miss.
        assert (
            cache.lookup(bound("SELECT * FROM Events WHERE EId = ?", [2]), {"MyUId": 3}, Trace())
            is None
        )
        # A session that certified a *different* event: still a miss for
        # event 2, hit for its own event.
        trace_b = trace_with_attendance(calendar_schema, 3, 7)
        assert (
            cache.lookup(bound("SELECT * FROM Events WHERE EId = ?", [2]), {"MyUId": 3}, trace_b)
            is None
        )
        hit = cache.lookup(
            bound("SELECT * FROM Events WHERE EId = ?", [7]), {"MyUId": 3}, trace_b
        )
        assert hit is not None and hit.allowed


class TestWriteInvalidation:
    def test_invalidation_is_observed_by_every_session(
        self, calendar_schema, calendar_policy
    ):
        cache = SharedDecisionCache(calendar_policy)
        checker = ComplianceChecker(calendar_schema, calendar_policy)
        stmt = bound("SELECT EId FROM Attendance WHERE UId = ?", [1])
        decision = checker.check(stmt, {"MyUId": 1})
        cache.store(stmt, {"MyUId": 1}, decision)
        assert cache.size == 1

        evicted = cache.invalidate_table("Attendance")
        assert evicted == 1
        assert cache.invalidations == 1
        # Every session — including the one that stored it — misses now.
        for uid in (1, 2, 3):
            assert (
                cache.lookup(
                    bound("SELECT EId FROM Attendance WHERE UId = ?", [uid]),
                    {"MyUId": uid},
                    Trace(),
                )
                is None
            )

    def test_fact_dependent_templates_evicted_by_guard_table_write(
        self, calendar_schema, calendar_policy
    ):
        """A template justified by an Attendance fact dies on Attendance writes."""
        cache = SharedDecisionCache(calendar_policy)
        checker = ComplianceChecker(calendar_schema, calendar_policy)
        trace = trace_with_attendance(calendar_schema, 1, 2)
        stmt = bound("SELECT * FROM Events WHERE EId = ?", [2])
        decision = checker.check(stmt, {"MyUId": 1}, trace)
        assert decision.facts_used
        cache.store(stmt, {"MyUId": 1}, decision)
        # The query reads Events, but the justification leaned on an
        # Attendance fact: a write to either table evicts it.
        assert cache.invalidate_table("Attendance") == 1
        assert cache.size == 0

    def test_unrelated_table_write_evicts_nothing(
        self, calendar_schema, calendar_policy
    ):
        cache = SharedDecisionCache(calendar_policy)
        checker = ComplianceChecker(calendar_schema, calendar_policy)
        stmt = bound("SELECT EId FROM Attendance WHERE UId = ?", [1])
        cache.store(stmt, {"MyUId": 1}, checker.check(stmt, {"MyUId": 1}))
        assert cache.invalidate_table("Events") == 0
        assert cache.size == 1


class TestThreadSafety:
    def test_concurrent_sessions_share_without_corruption(
        self, calendar_schema, calendar_policy
    ):
        """Many threads look up / store / invalidate against one cache."""
        cache = SharedDecisionCache(calendar_policy)
        checker = ComplianceChecker(calendar_schema, calendar_policy)
        # One decision per distinct query shape, computed up front.
        shapes = [
            "SELECT EId FROM Attendance WHERE UId = ?",
            "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
        ]
        decisions = {}
        for shape in shapes:
            argc = shape.count("?")
            stmt = bound(shape, list(range(1, argc + 1)))
            decisions[shape] = checker.check(stmt, {"MyUId": 1})
            assert decisions[shape].allowed
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def session(uid: int) -> None:
            try:
                barrier.wait()
                for round_no in range(50):
                    shape = shapes[round_no % len(shapes)]
                    argc = shape.count("?")
                    args = [uid] * argc
                    stmt = bound(shape, args)
                    hit = cache.lookup(stmt, {"MyUId": uid}, None)
                    if hit is None:
                        cache.store(stmt, {"MyUId": uid}, decisions[shape])
                    if round_no % 17 == 0:
                        cache.invalidate_table("Attendance")
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=session, args=(uid,)) for uid in range(1, 9)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 50
        # Invalidations ran, and the cache is still internally consistent.
        assert stats["invalidations"] > 0
        assert cache.size <= len(shapes) * 2
