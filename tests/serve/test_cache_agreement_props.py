"""Property test: the cached decision path agrees with the uncached checker.

The shared cache's safety argument (see ``repro.serve.cache``) says a
template hit is only possible when a fresh :class:`ComplianceChecker`
run for the *requesting* session would also allow. We fuzz that claim:
random query shapes, random constants, random session bindings, and a
randomly populated trace — whenever the cache answers, the checker must
answer the same.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.enforce.checker import ComplianceChecker
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.relalg.translate import translate_select
from repro.serve import SharedDecisionCache
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app

#: Query shapes over the calendar schema, with the number of holes.
SHAPES = [
    ("SELECT EId FROM Attendance WHERE UId = ?", 1),
    ("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", 2),
    ("SELECT * FROM Events WHERE EId = ?", 1),
    ("SELECT Title, Loc FROM Events WHERE EId = ?", 1),
    ("SELECT Name FROM Users WHERE UId = ?", 1),
    ("SELECT * FROM Events", 0),
]

ids = st.integers(min_value=1, max_value=6)


@st.composite
def scenarios(draw):
    """Two query instances of one shape, plus sessions and trace seeds."""
    shape_index = draw(st.integers(min_value=0, max_value=len(SHAPES) - 1))
    sql, holes = SHAPES[shape_index]
    store_args = [draw(ids) for _ in range(holes)]
    probe_args = [draw(ids) for _ in range(holes)]
    store_user = draw(ids)
    probe_user = draw(ids)
    # Attendance rows each session has "seen" (guard-query results).
    store_seen = draw(st.lists(st.tuples(ids, ids), max_size=3))
    probe_seen = draw(st.lists(st.tuples(ids, ids), max_size=3))
    return sql, store_args, probe_args, store_user, probe_user, store_seen, probe_seen


@pytest.fixture(scope="module")
def schema():
    return calendar_app.make_schema()


@pytest.fixture(scope="module")
def policy():
    return calendar_app.ground_truth_policy()


def make_trace(schema, seen):
    trace = Trace()
    for uid, eid in seen:
        guard = translate_select(
            bind_parameters(
                parse_select("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?"),
                [uid, eid],
            ),
            schema,
        ).disjuncts[0]
        trace.record("guard", guard, Result(columns=["c"], rows=[(1,)]))
    return trace


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(scenario=scenarios())
def test_cache_hits_agree_with_uncached_checker(scenario, schema, policy):
    sql, store_args, probe_args, store_user, probe_user, store_seen, probe_seen = (
        scenario
    )
    checker = ComplianceChecker(schema, policy)
    cache = SharedDecisionCache(policy)

    store_stmt = bind_parameters(parse_select(sql), store_args)
    store_trace = make_trace(schema, store_seen)
    stored = checker.check(store_stmt, {"MyUId": store_user}, store_trace)
    cache.store(store_stmt, {"MyUId": store_user}, stored)

    probe_stmt = bind_parameters(parse_select(sql), probe_args)
    probe_trace = make_trace(schema, probe_seen)
    hit = cache.lookup(probe_stmt, {"MyUId": probe_user}, probe_trace)
    fresh = checker.check(probe_stmt, {"MyUId": probe_user}, probe_trace)

    if hit is not None:
        # The safety property: a cache hit never over-allows.
        assert hit.allowed
        assert fresh.allowed == hit.allowed, (
            f"cache allowed {sql} args={probe_args} user={probe_user} "
            f"seen={probe_seen}, checker said {fresh.reason!r}"
        )
    # And storing never flips an uncached verdict (block decisions are
    # simply not cached).
    if not stored.allowed:
        assert cache.size == 0
