"""Utility-module tests."""

import pytest

from repro.util.errors import DbacError, EngineError, ParseError, PolicyError
from repro.util.text import comma_join, fresh_name_factory, indent, sql_quote


class TestSqlQuote:
    def test_null(self):
        assert sql_quote(None) == "NULL"

    def test_booleans(self):
        assert sql_quote(True) == "TRUE"
        assert sql_quote(False) == "FALSE"

    def test_string_escaping(self):
        assert sql_quote("it's") == "'it''s'"

    def test_numbers(self):
        assert sql_quote(5) == "5"
        assert sql_quote(2.5) == "2.5"


class TestTextHelpers:
    def test_comma_join(self):
        assert comma_join(["a", "b"]) == "a, b"
        assert comma_join([]) == ""

    def test_indent(self):
        assert indent("a\nb") == "  a\n  b"

    def test_fresh_names_unique(self):
        fresh = fresh_name_factory("t")
        assert fresh() == "t0"
        assert fresh() == "t1"


class TestErrorHierarchy:
    def test_all_derive_from_dbac_error(self):
        for exc_type in (ParseError, EngineError, PolicyError):
            assert issubclass(exc_type, DbacError)

    def test_parse_error_renders_caret(self):
        error = ParseError("bad token", position=3, sql="SELECT")
        text = str(error)
        assert "bad token" in text
        assert "^" in text

    def test_parse_error_without_position(self):
        assert str(ParseError("oops")) == "oops"


class TestDecisionExplain:
    def test_allow_explanation_names_views(self, calendar_schema, calendar_policy):
        from repro.enforce.checker import ComplianceChecker
        from repro.sqlir.params import bind_parameters
        from repro.sqlir.parser import parse_select

        checker = ComplianceChecker(calendar_schema, calendar_policy)
        stmt = bind_parameters(
            parse_select("SELECT EId FROM Attendance WHERE UId = ?"), [1]
        )
        decision = checker.check(stmt, {"MyUId": 1})
        text = decision.explain()
        assert "V1" in text

    def test_block_explanation_states_gap(self, calendar_schema, calendar_policy):
        from repro.enforce.checker import ComplianceChecker
        from repro.sqlir.parser import parse_select

        checker = ComplianceChecker(calendar_schema, calendar_policy)
        decision = checker.check(parse_select("SELECT * FROM Events"), {"MyUId": 1})
        assert "no combination of policy views" in decision.explain()

    def test_history_explanation_lists_facts(self, calendar_schema, calendar_policy):
        from repro.enforce.checker import ComplianceChecker
        from repro.enforce.trace import Trace
        from repro.engine.executor import Result
        from repro.relalg.translate import translate_select
        from repro.sqlir.params import bind_parameters
        from repro.sqlir.parser import parse_select

        checker = ComplianceChecker(calendar_schema, calendar_policy)
        trace = Trace()
        q1 = translate_select(
            bind_parameters(
                parse_select("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?"),
                [1, 2],
            ),
            calendar_schema,
        ).disjuncts[0]
        trace.record("q1", q1, Result(columns=["c"], rows=[(1,)]))
        decision = checker.check(
            bind_parameters(parse_select("SELECT * FROM Events WHERE EId = ?"), [2]),
            {"MyUId": 1},
            trace,
        )
        text = decision.explain()
        assert "certified trace facts" in text
        assert "Attendance(1, 2)" in text
