"""CQ-over-instance evaluator tests."""

from repro.evaluate.answers import (
    enumerate_instances,
    evaluate_cq,
    evaluate_ucq,
    nonempty,
    view_image,
)
from repro.relalg.cq import CQ, UCQ, Atom, Comp, Const, Param, Var
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select


def tr(sql, schema):
    return translate_select(parse_select(sql), schema)


INSTANCE = {
    "R": {(1, 10), (2, 20), (3, 10)},
    "S": {(10, "x"), (20, "y")},
    "T": set(),
}


class TestEvaluate:
    def test_projection(self, dict_schema):
        query = tr("SELECT a FROM R", dict_schema).disjuncts[0]
        assert evaluate_cq(query, INSTANCE) == {(1,), (2,), (3,)}

    def test_selection(self, dict_schema):
        query = tr("SELECT a FROM R WHERE b = 10", dict_schema).disjuncts[0]
        assert evaluate_cq(query, INSTANCE) == {(1,), (3,)}

    def test_join(self, dict_schema):
        query = tr(
            "SELECT R.a, S.c FROM R JOIN S ON R.b = S.b", dict_schema
        ).disjuncts[0]
        assert evaluate_cq(query, INSTANCE) == {(1, "x"), (3, "x"), (2, "y")}

    def test_order_comparison(self, dict_schema):
        query = tr("SELECT a FROM R WHERE a >= 2", dict_schema).disjuncts[0]
        assert evaluate_cq(query, INSTANCE) == {(2,), (3,)}

    def test_constant_head(self, dict_schema):
        query = tr("SELECT 1 FROM R WHERE a = 1", dict_schema).disjuncts[0]
        assert evaluate_cq(query, INSTANCE) == {(1,)}

    def test_empty_relation(self, dict_schema):
        query = tr("SELECT x FROM T", dict_schema).disjuncts[0]
        assert evaluate_cq(query, INSTANCE) == set()

    def test_missing_relation_treated_empty(self, dict_schema):
        query = tr("SELECT x FROM T", dict_schema).disjuncts[0]
        assert evaluate_cq(query, {}) == set()

    def test_param_matches_nothing(self):
        query = CQ(
            head=(Var("x"),),
            body=(Atom("R", (Var("x"), Param("P"))),),
        )
        assert evaluate_cq(query, INSTANCE) == set()

    def test_ucq_union(self, dict_schema):
        query = tr("SELECT a FROM R WHERE b = 10 OR a = 2", dict_schema)
        assert evaluate_ucq(query, INSTANCE) == {(1,), (2,), (3,)}

    def test_nonempty_early_exit(self, dict_schema):
        query = tr("SELECT a FROM R", dict_schema).disjuncts[0]
        assert nonempty(query, INSTANCE)
        empty = tr("SELECT x FROM T", dict_schema).disjuncts[0]
        assert not nonempty(empty, INSTANCE)

    def test_view_image_frozen(self, dict_schema):
        query = tr("SELECT a FROM R", dict_schema).disjuncts[0]
        image = view_image(query, INSTANCE)
        assert isinstance(image, frozenset)

    def test_self_join(self, dict_schema):
        query = tr(
            "SELECT r1.a, r2.a FROM R r1 JOIN R r2 ON r1.b = r2.b"
            " WHERE r1.a < r2.a",
            dict_schema,
        ).disjuncts[0]
        assert evaluate_cq(query, INSTANCE) == {(1, 3)}


class TestEnumeration:
    def test_counts_small_space(self):
        # One unary relation over a 2-element domain, at most 2 rows:
        # {} {a} {b} {a,b} = 4 instances.
        instances = list(enumerate_instances({"U": 1}, [1, 2], max_rows=2))
        contents = {frozenset(i.get("U", set())) for i in instances}
        assert len(contents) == 4

    def test_respects_row_bound(self):
        instances = list(enumerate_instances({"U": 1}, [1, 2, 3], max_rows=1))
        assert all(len(i.get("U", set())) <= 1 for i in instances)
