"""k-anonymity tests."""

import pytest

from repro.evaluate.kanon import (
    GeneralizationHierarchy,
    l_diversity,
    age_hierarchy,
    categorical_hierarchy,
    find_minimal_generalization,
    generalize_rows,
    k_anonymity,
    suppress_to_k,
    zip_hierarchy,
)
from repro.util.errors import DbacError

ROWS = [
    # (name, age, zip)
    ("a", 34, "02139"),
    ("b", 36, "02139"),
    ("c", 34, "02141"),
    ("d", 61, "94703"),
    ("e", 62, "94703"),
]


class TestMeasure:
    def test_k_of_release(self):
        # Quasi-identifier (age, zip): every group is a singleton.
        assert k_anonymity(ROWS, [1, 2]) == 1

    def test_k_with_coarse_quasi(self):
        # Quasi-identifier zip only: {02139: 2, 02141: 1, 94703: 2} → 1.
        assert k_anonymity(ROWS, [2]) == 1

    def test_empty_release(self):
        assert k_anonymity([], [0]) == 0

    def test_uniform_release(self):
        rows = [("x", 1), ("y", 1), ("z", 1)]
        assert k_anonymity(rows, [1]) == 3


class TestHierarchies:
    def test_age_banding(self):
        h = age_hierarchy()
        assert h.apply(0, 34) == 34
        assert h.apply(1, 34) == "30-34"
        assert h.apply(2, 34) == "30-39"
        assert h.apply(3, 34) == "20-39"
        assert h.apply(4, 34) == "*"

    def test_zip_masking(self):
        h = zip_hierarchy()
        assert h.apply(0, "02139") == "02139"
        assert h.apply(1, "02139") == "0213*"
        assert h.apply(3, "02139") == "02***"
        assert h.apply(4, "02139") == "*****"

    def test_categorical(self):
        h = categorical_hierarchy("dept")
        assert h.apply(0, "eng") == "eng"
        assert h.apply(1, "eng") == "*"

    def test_level_out_of_range(self):
        with pytest.raises(DbacError):
            age_hierarchy().apply(9, 34)


class TestGeneralize:
    def test_generalize_rows(self):
        out = generalize_rows(ROWS, [1, 2], [age_hierarchy(), zip_hierarchy()], [2, 1])
        assert out[0][1] == "30-39"
        assert out[0][2] == "0213*"
        # Non-quasi columns untouched.
        assert out[0][0] == "a"

    def test_misaligned_arguments(self):
        with pytest.raises(DbacError):
            generalize_rows(ROWS, [1], [age_hierarchy(), zip_hierarchy()], [0, 0])

    def test_suppress_to_k(self):
        generalized = generalize_rows(
            ROWS, [1, 2], [age_hierarchy(), zip_hierarchy()], [2, 1]
        )
        kept, suppressed = suppress_to_k(generalized, [1, 2], 2)
        assert suppressed == 1  # the 02141 row
        assert k_anonymity(kept, [1, 2]) >= 2


class TestMinimalGeneralization:
    def test_finds_minimal_levels(self):
        result = find_minimal_generalization(
            ROWS, [1, 2], [age_hierarchy(), zip_hierarchy()], k=2, max_suppressed=1
        )
        assert result is not None
        assert result.k >= 2
        assert result.suppressed <= 1

    def test_minimality_by_total_level(self):
        result = find_minimal_generalization(
            ROWS, [1, 2], [age_hierarchy(), zip_hierarchy()], k=2, max_suppressed=1
        )
        # No strictly lower total level achieves the same guarantee.
        from repro.evaluate.kanon import _levels_with_total

        heights = [age_hierarchy().height, zip_hierarchy().height]
        for total in range(result.total_level):
            for levels in _levels_with_total(heights, total):
                generalized = generalize_rows(
                    ROWS, [1, 2], [age_hierarchy(), zip_hierarchy()], levels
                )
                kept, suppressed = suppress_to_k(generalized, [1, 2], 2)
                assert suppressed > 1 or not kept or k_anonymity(kept, [1, 2]) < 2

    def test_k1_trivial(self):
        result = find_minimal_generalization(
            ROWS, [1, 2], [age_hierarchy(), zip_hierarchy()], k=1
        )
        assert result is not None
        assert result.total_level == 0

    def test_impossible_without_suppression(self):
        rows = [("only", 30, "02139")]
        result = find_minimal_generalization(
            rows, [1, 2], [age_hierarchy(), zip_hierarchy()], k=2, max_suppressed=0
        )
        assert result is None

    def test_employees_workload_release(self, employees_db):
        from repro.workloads.employees import quasi_identifiers

        rows = employees_db.query("SELECT Age, Dept, ZIP, Salary FROM Employees").rows
        result = find_minimal_generalization(
            rows,
            [0, 1, 2],
            [age_hierarchy(), categorical_hierarchy("dept"), zip_hierarchy()],
            k=3,
            max_suppressed=len(rows) // 10,
        )
        assert result is not None
        assert result.k >= 3


class TestLDiversity:
    ROWS = [
        # (zip, disease)
        ("02139", "flu"),
        ("02139", "flu"),
        ("02139", "tb"),
        ("94703", "flu"),
        ("94703", "flu"),
    ]

    def test_homogeneous_group_has_l_1(self):
        # The 94703 group is 2-anonymous but perfectly homogeneous.
        assert l_diversity(self.ROWS, [0], 1) == 1

    def test_diverse_group_counts_values(self):
        only_cambridge = [r for r in self.ROWS if r[0] == "02139"]
        assert l_diversity(only_cambridge, [0], 1) == 2

    def test_empty_release(self):
        assert l_diversity([], [0], 1) == 0

    def test_k_anonymity_does_not_imply_diversity(self):
        # The paper's Example 4.1 in microdata form: k >= 2 yet l = 1.
        assert k_anonymity(self.ROWS, [0]) >= 2
        assert l_diversity(self.ROWS, [0], 1) == 1
