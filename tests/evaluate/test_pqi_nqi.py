"""PQI/NQI checker tests — Examples 4.1 and 4.2 plus semantics checks."""

import pytest

from repro.evaluate.answers import evaluate_cq
from repro.evaluate.nqi import check_nqi
from repro.evaluate.pqi import check_pqi
from repro.relalg.chase import TGD
from repro.relalg.cq import Atom, Var
from repro.relalg.rewrite import ViewDef
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app, employees, hospital


def tr1(sql, schema, name=None):
    return translate_select(parse_select(sql), schema, name).disjuncts[0]


@pytest.fixture
def employee_queries():
    schema = employees.make_schema()
    q1 = tr1(employees.Q1_SQL, schema, "Q1")
    q2 = tr1(employees.Q2_SQL, schema, "Q2")
    return q1, q2


class TestExample42:
    """The paper's employee example, all four directions."""

    def test_pqi_seniors_reveal_adults(self, employee_queries):
        q1, q2 = employee_queries
        result = check_pqi(q2, [ViewDef("Q1", q1)])
        assert result.holds
        assert result.witness is not None

    def test_nqi_adults_bound_seniors(self, employee_queries):
        q1, q2 = employee_queries
        result = check_nqi(q1, [ViewDef("Q2", q2)])
        assert result.holds

    def test_pqi_not_conversely(self, employee_queries):
        q1, q2 = employee_queries
        assert not check_pqi(q1, [ViewDef("Q2", q2)]).holds

    def test_nqi_not_conversely(self, employee_queries):
        q1, q2 = employee_queries
        assert not check_nqi(q2, [ViewDef("Q1", q1)]).holds

    def test_pqi_witness_instance_is_concrete(self, employee_queries):
        q1, q2 = employee_queries
        result = check_pqi(q2, [ViewDef("Q1", q1)])
        assert result.witness_instance is not None
        assert result.certain_row is not None
        # The certain row really is an answer on the witness instance.
        assert result.certain_row in evaluate_cq(q2, result.witness_instance)

    def test_explanations_render(self, employee_queries):
        q1, q2 = employee_queries
        assert "PQI holds" in check_pqi(q2, [ViewDef("Q1", q1)]).explain()
        assert "no NQI witness" in check_nqi(q2, [ViewDef("Q1", q1)]).explain()


HOSPITAL_TGD = TGD(
    body=(Atom("PatientConditions", (Var("p"), Var("d"))),),
    head=(
        Atom("Patients", (Var("p"), Var("n"), Var("doc"))),
        Atom("DoctorDiseases", (Var("doc"), Var("d"))),
    ),
    name="treated-by-assigned-doctor",
)


class TestExample41:
    """The hospital example needs the integrity constraint (as a TGD)."""

    @pytest.fixture
    def setup(self):
        schema = hospital.make_schema()
        views = hospital.ground_truth_policy().view_defs({})
        sensitive = tr1(
            hospital.sensitive_query_sql().replace("?PatientId", "1"), schema, "S"
        )
        return sensitive, views

    def test_nqi_holds_under_constraint(self, setup):
        sensitive, views = setup
        result = check_nqi(sensitive, views, constraints=[HOSPITAL_TGD])
        assert result.holds

    def test_nqi_fails_without_constraint(self, setup):
        sensitive, views = setup
        assert not check_nqi(sensitive, views).holds

    def test_pqi_does_not_hold(self, setup):
        # The views never pin a patient's disease to a certain answer
        # (the patient might have no recorded condition at all).
        sensitive, views = setup
        assert not check_pqi(sensitive, views, constraints=[HOSPITAL_TGD]).holds


class TestCalendarScenario:
    def test_attended_titles_are_certain(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        sensitive = tr1("SELECT Title FROM Events", calendar_schema, "S")
        assert check_pqi(sensitive, views).holds

    def test_titles_not_bounded(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        sensitive = tr1("SELECT Title FROM Events", calendar_schema, "S")
        assert not check_nqi(sensitive, views).holds

    def test_coattendee_leak_detected(self, calendar_schema, calendar_policy):
        # V4 (attendee lists) genuinely discloses other users' attendance
        # at shared events — the checker finds this real PQI.
        views = calendar_policy.view_defs({"MyUId": 1})
        sensitive = tr1(
            "SELECT EId FROM Attendance WHERE UId = 99", calendar_schema, "S"
        )
        assert check_pqi(sensitive, views).holds

    def test_unrelated_sensitive_clean_without_v4(
        self, calendar_schema, calendar_policy
    ):
        # Without the attendee-list view, another user's attendance is
        # neither pinned nor bounded.
        views = [
            d for d in calendar_policy.view_defs({"MyUId": 1}) if d.name != "V4"
        ]
        sensitive = tr1(
            "SELECT EId FROM Attendance WHERE UId = 99", calendar_schema, "S"
        )
        assert not check_pqi(sensitive, views).holds
        assert not check_nqi(sensitive, views).holds


class TestEdgeCases:
    def test_unsatisfiable_sensitive(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        sensitive = tr1(
            "SELECT Title FROM Events WHERE EId < 1 AND EId > 2", calendar_schema
        )
        assert not check_pqi(sensitive, views).holds
        assert not check_nqi(sensitive, views).holds

    def test_no_views(self, calendar_schema):
        sensitive = tr1("SELECT Title FROM Events", calendar_schema)
        assert not check_pqi(sensitive, []).holds
        assert not check_nqi(sensitive, []).holds

    def test_view_equal_to_sensitive_gives_both(self, calendar_schema):
        sensitive = tr1("SELECT Title FROM Events", calendar_schema)
        view = ViewDef("V", tr1("SELECT Title FROM Events", calendar_schema))
        assert check_pqi(sensitive, [view]).holds
        assert check_nqi(sensitive, [view]).holds
