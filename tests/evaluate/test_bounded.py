"""Bounded semantic oracle tests, and validation of the production checkers.

The key assertions tie the rewriting-based PQI/NQI checkers back to the
*definitions*: whenever the production checker claims the criterion
holds, the brute-force enumeration over a domain containing the witness
values must agree. (The converse is not asserted: the production
checkers are deliberately conservative, and bounded enumeration itself
over-approximates.)
"""

import pytest

from repro.evaluate.bounded import bounded_nqi, bounded_pqi
from repro.evaluate.nqi import check_nqi
from repro.evaluate.pqi import check_pqi
from repro.relalg.cq import CQ, Atom, Comp, Const, Var
from repro.relalg.rewrite import ViewDef

# A tiny vocabulary: one binary relation E(name, age) with ages in a
# 3-value domain, mirroring Example 4.2's shape at toy scale.
ARITIES = {"E": 2}
DOMAIN = [0, 1, 2]


def query(threshold):
    """SELECT name FROM E WHERE age >= threshold, at toy scale."""
    return CQ(
        head=(Var("n"),),
        body=(Atom("E", (Var("n"), Var("a"))),),
        comps=(Comp("<=", Const(threshold), Var("a")),),
    )


class TestOracleSemantics:
    def test_identity_view_gives_both(self):
        sensitive = query(1)
        views = [ViewDef("V", query(1))]
        assert bounded_pqi(sensitive, views, ARITIES, DOMAIN).holds
        assert bounded_nqi(sensitive, views, ARITIES, DOMAIN).holds

    def test_narrow_view_pqi_only(self):
        # V = age >= 2 (seniors), S = age >= 1 (adults): positive
        # implication but no bound.
        sensitive = query(1)
        views = [ViewDef("V", query(2))]
        assert bounded_pqi(sensitive, views, ARITIES, DOMAIN).holds
        assert not bounded_nqi(sensitive, views, ARITIES, DOMAIN).holds

    def test_broad_view_nqi_only(self):
        sensitive = query(2)
        views = [ViewDef("V", query(1))]
        assert not bounded_pqi(sensitive, views, ARITIES, DOMAIN).holds
        assert bounded_nqi(sensitive, views, ARITIES, DOMAIN).holds

    def test_unrelated_view_gives_neither(self):
        sensitive = query(1)
        # A view over a different relation reveals nothing about E.
        other = CQ(head=(Var("x"),), body=(Atom("F", (Var("x"),)),))
        views = [ViewDef("V", other)]
        arities = {"E": 2, "F": 1}
        assert not bounded_pqi(sensitive, views, arities, DOMAIN, max_rows=2).holds
        assert not bounded_nqi(sensitive, views, arities, DOMAIN, max_rows=2).holds

    def test_witnesses_reported(self):
        sensitive = query(1)
        views = [ViewDef("V", query(2))]
        result = bounded_pqi(sensitive, views, ARITIES, DOMAIN)
        assert result.witness_row is not None
        assert result.instances_examined > 0


class TestCheckerAgreesWithDefinitions:
    """Production checker says holds ⇒ the oracle must agree."""

    CASES = [
        # (sensitive threshold, view threshold)
        (1, 1),
        (1, 2),
        (2, 1),
        (2, 2),
        (0, 2),
        (2, 0),
    ]

    @pytest.mark.parametrize(("s_thresh", "v_thresh"), CASES)
    def test_pqi_direction(self, s_thresh, v_thresh):
        sensitive = query(s_thresh)
        views = [ViewDef("V", query(v_thresh))]
        if check_pqi(sensitive, views).holds:
            assert bounded_pqi(sensitive, views, ARITIES, DOMAIN).holds

    @pytest.mark.parametrize(("s_thresh", "v_thresh"), CASES)
    def test_nqi_direction(self, s_thresh, v_thresh):
        sensitive = query(s_thresh)
        views = [ViewDef("V", query(v_thresh))]
        if check_nqi(sensitive, views).holds:
            assert bounded_nqi(sensitive, views, ARITIES, DOMAIN).holds

    def test_join_view_case(self):
        # S: pairs joined on the second column; V exposes the join.
        sensitive = CQ(
            head=(Var("x"), Var("y")),
            body=(
                Atom("R", (Var("x"), Var("z"))),
                Atom("R", (Var("y"), Var("z"))),
            ),
        )
        view = ViewDef("V", sensitive)
        arities = {"R": 2}
        assert check_pqi(sensitive, [view]).holds
        assert bounded_pqi(sensitive, [view], arities, [0, 1], max_rows=2).holds
