"""Bayesian-baseline tests: posterior conditioning and prior sensitivity."""

import random

import pytest

from repro.evaluate.answers import images_of
from repro.evaluate.bayes import (
    ChoicePrior,
    TupleIndependentPrior,
    posterior_over_sensitive,
    total_variation,
)
from repro.relalg.rewrite import ViewDef
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select
from repro.workloads import hospital


def tr1(sql, schema, name=None):
    return translate_select(parse_select(sql), schema, name).disjuncts[0]


class TestTotalVariation:
    def test_identical_distributions(self):
        d = {frozenset({(1,)}): 1.0}
        assert total_variation(d, d) == 0.0

    def test_disjoint_distributions(self):
        left = {frozenset({(1,)}): 1.0}
        right = {frozenset({(2,)}): 1.0}
        assert total_variation(left, right) == 1.0

    def test_partial_overlap(self):
        left = {frozenset({(1,)}): 0.5, frozenset({(2,)}): 0.5}
        right = {frozenset({(1,)}): 1.0}
        assert total_variation(left, right) == pytest.approx(0.5)


class TestPriors:
    def test_tuple_independent_sampling(self):
        prior = TupleIndependentPrior(
            fixed={"R": {(1, 1)}},
            uncertain={"R": [((2, 2), 1.0), ((3, 3), 0.0)]},
        )
        instance = prior.sample(random.Random(0))
        assert (1, 1) in instance["R"]
        assert (2, 2) in instance["R"]
        assert (3, 3) not in instance["R"]

    def test_choice_prior_exactly_one(self):
        prior = ChoicePrior(
            choices={"R": [[((1, "a"), 0.5), ((1, "b"), 0.5)]]}
        )
        rng = random.Random(1)
        for _ in range(20):
            instance = prior.sample(rng)
            assert len(instance["R"]) == 1


class TestHospitalScenario:
    """Example 4.1: the posterior narrows John's disease to two options."""

    @pytest.fixture
    def scenario(self):
        schema = hospital.make_schema()
        db = hospital.make_database(size=8, seed=11)
        views = hospital.ground_truth_policy().view_defs({})
        sensitive = tr1(
            "SELECT Disease FROM PatientConditions WHERE PId = 1", schema, "S"
        )
        observed = images_of(views, db.relation_contents())
        fixed = {
            rel: rows
            for rel, rows in db.relation_contents().items()
            if rel != "PatientConditions"
        }
        diseases = sorted(
            {d for (_, d) in db.relation_contents()["DoctorDiseases"]}
        )
        patients = sorted(p for (p, _, _) in db.relation_contents()["Patients"])
        return db, views, sensitive, observed, fixed, diseases, patients

    def make_prior(self, fixed, diseases, patients, weights):
        groups = []
        for pid in patients:
            groups.append([((pid, d), w) for d, w in zip(diseases, weights)])
        return ChoicePrior(fixed=fixed, choices={"PatientConditions": groups})

    def test_posterior_concentrates_on_doctors_diseases(self, scenario):
        db, views, sensitive, observed, fixed, diseases, patients = scenario
        uniform = [1.0 / len(diseases)] * len(diseases)
        prior = self.make_prior(fixed, diseases, patients, uniform)
        report = posterior_over_sensitive(
            prior, views, observed, sensitive, samples=3000, rng=random.Random(2)
        )
        # Wait: the views don't see PatientConditions, so every sample is
        # accepted and the posterior equals the prior — unless the prior
        # itself encodes the treated-by-doctor constraint. This uniform
        # prior does not, so the shift must be ~0: the Bayesian criterion
        # is only as good as the modeled prior, which is §4.2's point.
        assert report.acceptance_rate == 1.0
        assert report.belief_shift < 0.05

    def test_constraint_aware_prior_narrows_answer(self, scenario):
        db, views, sensitive, observed, fixed, diseases, patients = scenario
        # A prior that knows the integrity constraint: each patient's
        # disease is drawn from their doctor's specialties.
        contents = db.relation_contents()
        doctor_of = {p: doc for (p, _, doc) in contents["Patients"]}
        treats = {}
        for doc, disease in contents["DoctorDiseases"]:
            treats.setdefault(doc, []).append(disease)
        groups = []
        for pid in patients:
            options = sorted(treats[doctor_of[pid]])
            groups.append([((pid, d), 1.0 / len(options)) for d in options])
        prior = ChoicePrior(fixed=fixed, choices={"PatientConditions": groups})
        report = posterior_over_sensitive(
            prior, views, observed, sensitive, samples=2000, rng=random.Random(3)
        )
        # John's doctor treats exactly two diseases → the posterior support
        # has exactly two answers (the paper's "narrow down to two").
        support = {
            next(iter(answer))[0] if answer else None
            for answer in report.posterior_distribution
        }
        assert support == set(hospital.JOHN_DOCTOR_DISEASES)

    def test_prior_sensitivity_of_belief_shift(self, scenario):
        """E8's core claim: different priors → wildly different posteriors."""
        db, views, sensitive, observed, fixed, diseases, patients = scenario
        contents = db.relation_contents()
        doctor_of = {p: doc for (p, _, doc) in contents["Patients"]}
        treats = {}
        for doc, disease in contents["DoctorDiseases"]:
            treats.setdefault(doc, []).append(disease)

        def prior_with_tilt(tilt):
            groups = []
            for pid in patients:
                options = sorted(treats[doctor_of[pid]])
                weights = [tilt if d == options[0] else (1 - tilt) / (len(options) - 1)
                           for d in options] if len(options) > 1 else [1.0]
                groups.append([((pid, d), w) for d, w in zip(options, weights)])
            return ChoicePrior(fixed=fixed, choices={"PatientConditions": groups})

        posteriors = []
        for tilt in (0.05, 0.5, 0.95):
            report = posterior_over_sensitive(
                prior_with_tilt(tilt),
                views,
                observed,
                sensitive,
                samples=1500,
                rng=random.Random(4),
            )
            top = report.top_posterior()
            posteriors.append(top[1] if top else 0.0)
        # The adversary's confidence about John's disease swings with the
        # prior while the policy and data are fixed.
        assert max(posteriors) - min(posteriors) > 0.3
