"""Shared mining-test fixtures: a calendar gateway wired for mining."""

from __future__ import annotations

import pytest

from repro.lifecycle import LifecycleManager
from repro.lifecycle.promote import GateConfig
from repro.mining import MiningConfig
from repro.policy.policy import Policy
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


@pytest.fixture
def calendar_pair():
    """(app, db) with the Example 2.1 attendance row guaranteed present."""
    app = calendar_app.make_app()
    db = app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    return app, db


def make_mining_stack(
    app,
    db,
    mode: str = "auto_promote",
    min_window: int = 4,
    min_shadow_checks: int = 5,
    **config_overrides,
):
    """Gateway + LifecycleManager with an attached MiningService."""
    mining = MiningConfig(min_window=min_window, mode=mode, **config_overrides)
    gateway = EnforcementGateway(
        db, app.ground_truth_policy(), GatewayConfig(mining=mining)
    )
    manager = LifecycleManager(
        gateway, gates=GateConfig(min_shadow_checks=min_shadow_checks)
    )
    return gateway, manager, manager.mining


def without_view(policy: Policy, name: str) -> Policy:
    return Policy(
        [v for v in policy.views if v.name != name], name=f"minus-{name}"
    )
