"""AuditStream: durable sink, bounded subscriptions, explicit loss."""

from __future__ import annotations

import json

import pytest

from repro.mining import AuditStream
from repro.serve import EnforcementGateway, GatewayConfig
from repro.serve.gateway import DecisionAuditRecord


def make_record(sql="SELECT 1 FROM Attendance WHERE UId = 1", allowed=True, version=1):
    return DecisionAuditRecord(
        sql=sql,
        bindings={"MyUId": 1},
        facts=(),
        trace_len=0,
        allowed=allowed,
        policy_version=version,
        from_cache=False,
        views=("V1",),
    )


class TestSubscriptions:
    def test_entries_get_monotonic_ids_across_subscribers(self):
        stream = AuditStream()
        first = stream.subscribe(cap=16)
        second = stream.subscribe(cap=16)
        for index in range(5):
            stream(make_record(sql=f"SELECT {index}"))
        ids_first = [entry.id for entry in first.drain()]
        ids_second = [entry.id for entry in second.drain()]
        assert ids_first == ids_second == [1, 2, 3, 4, 5]

    def test_drain_empties_the_queue(self):
        stream = AuditStream()
        subscription = stream.subscribe(cap=16)
        stream(make_record())
        assert len(subscription) == 1
        assert len(subscription.drain()) == 1
        assert len(subscription) == 0
        assert subscription.drain() == []

    def test_overflow_evicts_oldest_and_counts_the_loss(self):
        stream = AuditStream()
        subscription = stream.subscribe(cap=3)
        for index in range(10):
            stream(make_record(sql=f"SELECT {index}"))
        assert subscription.dropped == 7
        entries = subscription.drain()
        assert [entry.id for entry in entries] == [8, 9, 10]  # newest survive
        assert stream.stats()["dropped"] == 7

    def test_closed_subscription_stops_receiving(self):
        stream = AuditStream()
        subscription = stream.subscribe(cap=4)
        stream(make_record())
        subscription.close()
        stream(make_record())
        assert len(subscription) == 1
        assert stream.stats()["subscribers"] == 0

    def test_cap_must_be_positive(self):
        stream = AuditStream()
        with pytest.raises(ValueError):
            stream.subscribe(cap=0)


class TestSink:
    def test_jsonl_sink_holds_one_line_per_decision(self, tmp_path):
        sink = tmp_path / "audit.jsonl"
        stream = AuditStream(sink_path=str(sink))
        stream(make_record(sql="SELECT A", allowed=True))
        stream(make_record(sql="SELECT B", allowed=False, version=2))
        stream.close()
        lines = [
            json.loads(line) for line in sink.read_text().splitlines() if line
        ]
        assert [entry["sql"] for entry in lines] == ["SELECT A", "SELECT B"]
        assert lines[0]["allowed"] and not lines[1]["allowed"]
        assert lines[1]["policy_version"] == 2
        assert lines[0]["views"] == ["V1"]
        assert stream.stats()["sink_records"] == 2


class TestGatewayIntegration:
    def test_snapshot_surfaces_stream_counters(self, calendar_pair):
        app, db = calendar_pair
        gateway = EnforcementGateway(db, app.ground_truth_policy(), GatewayConfig())
        try:
            stream = AuditStream()
            gateway.decision_audit = stream
            subscription = stream.subscribe(cap=2)
            connection = gateway.connect(1)
            for eid in range(1, 7):
                connection.query(
                    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                )
            snapshot = gateway.snapshot()
            assert snapshot.counters["audit_records"] == 6
            # The overflowed subscription's loss is explicit in the
            # aggregate counter — never silent.
            assert snapshot.counters["audit_dropped"] == 4
            assert subscription.dropped == 4
        finally:
            gateway.close()
