"""MiningService: audit tap → mine → shadow → gated promotion."""

from __future__ import annotations

import pytest

from repro.enforce.decision import PolicyViolation
from repro.mining import MinedCandidate, MiningError
from repro.policy.serialize import policy_to_text

from tests.mining.conftest import make_mining_stack, without_view


def drive_attendance(gateway, eids):
    connection = gateway.connect(1)
    for eid in eids:
        connection.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
    return connection


def seed_gap(gateway, manager, connection):
    """Traffic under v1 (full policy), then reload to v2 minus V2."""
    connection.query("SELECT * FROM Events WHERE EId = 2")  # V2-justified
    reduced = without_view(gateway.policy, "V2")
    manager.reload(reduced, label="gapped")
    for eid in range(1, 4):
        connection.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")


class TestAutoPromote:
    def test_seeded_gap_is_mined_shadowed_and_promoted(self, calendar_pair):
        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(app, db, mode="auto_promote")
        try:
            connection = drive_attendance(gateway, range(1, 6))
            seed_gap(gateway, manager, connection)
            with pytest.raises(PolicyViolation):
                connection.query("SELECT * FROM Events WHERE EId = 2")

            first = service.run_once()
            assert len(first["mined"]) == 1
            (fingerprint,) = first["mined"]
            assert service.candidates[fingerprint].status == "shadowing"
            assert gateway.shadow is not None

            # Fresh statements: cache hits still shadow-check, but fresh
            # shapes make the check count deterministic.
            drive_attendance(gateway, range(10, 18))
            second = service.run_once()
            assert second["progressed"]["action"] == "promoted"
            assert service.promoted == 1 and service.rejected == 0
            assert gateway.policy_version == 3
            assert gateway.policy.meta["provenance"] == "mined"
            # The gap is healed for live traffic.
            connection.query("SELECT * FROM Events WHERE EId = 2")
            actions = [entry["action"] for entry in service.disposition_audit()]
            assert actions == ["mined", "shadowing", "promoted"]
        finally:
            service.close()
            gateway.close()

    def test_window_below_min_never_mines(self, calendar_pair):
        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(
            app, db, mode="auto_promote", min_window=64
        )
        try:
            connection = drive_attendance(gateway, range(1, 6))
            seed_gap(gateway, manager, connection)
            assert service.run_once()["mined"] == []
        finally:
            service.close()
            gateway.close()


class TestProposeOnly:
    def test_candidates_park_until_operator_approval(self, calendar_pair):
        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(app, db, mode="propose_only")
        try:
            connection = drive_attendance(gateway, range(1, 6))
            seed_gap(gateway, manager, connection)
            (fingerprint,) = service.run_once()["mined"]
            candidate = service.candidates[fingerprint]
            assert candidate.status == "parked"
            assert "propose_only" in candidate.disposition
            assert gateway.shadow is None  # nothing auto-submitted

            service.approve(fingerprint)
            assert candidate.status == "shadowing"
            drive_attendance(gateway, range(10, 18))
            assert service.run_once()["progressed"]["action"] == "promoted"
            assert gateway.policy_version == 3
        finally:
            service.close()
            gateway.close()

    def test_approve_unknown_fingerprint_is_an_error(self, calendar_pair):
        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(app, db, mode="propose_only")
        try:
            with pytest.raises(MiningError, match="no mined candidate"):
                service.approve("feedfacedeadbeef")
        finally:
            service.close()
            gateway.close()


class TestRegressiveCandidates:
    def test_bad_tightening_is_rejected_with_diagnoses(self, calendar_pair):
        """A candidate that drops a view live traffic needs never goes live.

        propose_only keeps the post-rejection cycle from auto-submitting
        the next candidate, so the freed shadow slot stays observable.
        """
        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(app, db, mode="propose_only")
        try:
            full = gateway.policy
            regressive = without_view(full, "V1")
            candidate = MinedCandidate(
                kind="tighten",
                policy=regressive,
                view_name="V1",
                view_sql="...",
                fingerprint=regressive.fingerprint(),
                support=1.0,
                confidence=1.0,
                window=(1, 1),
                examples=(),
                miner_fingerprint=service.config.fingerprint(),
                source_version=1,
            )
            service.submit(candidate)
            # Live traffic exercises V1: the candidate flips these allows
            # to blocks in shadow.
            drive_attendance(gateway, range(1, 9))
            progressed = service.run_once()["progressed"]
            assert progressed["action"] == "rejected"
            assert candidate.status == "rejected"
            assert candidate.diagnoses  # §5 diagnoses attached
            assert "allow" in candidate.disposition
            assert service.rejected == 1
            # Never reached the active epoch; shadow slot freed.
            assert gateway.policy_version == 1
            assert gateway.shadow is None
            rejected = [
                entry
                for entry in service.disposition_audit()
                if entry["action"] == "rejected"
            ]
            assert rejected and rejected[0]["diagnoses"]
        finally:
            service.close()
            gateway.close()


class TestPlumbing:
    def test_second_service_on_a_taken_audit_hook_is_refused(self, calendar_pair):
        from repro.mining.service import MiningService

        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(app, db)
        try:
            with pytest.raises(MiningError, match="already taken"):
                MiningService(gateway, manager)
        finally:
            service.close()
            gateway.close()

    def test_status_and_candidates_are_wire_shaped(self, calendar_pair):
        import json

        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(app, db, mode="propose_only")
        try:
            connection = drive_attendance(gateway, range(1, 6))
            seed_gap(gateway, manager, connection)
            service.run_once()
            status = service.status()
            assert status["mode"] == "propose_only"
            assert status["mined_total"] == 1
            json.dumps(status)  # STATS-able
            (candidate,) = service.candidates_wire()
            json.dumps(candidate)
            assert candidate["status"] == "parked"
            assert candidate["text"].startswith("# policy")
            # The manager's status document carries the miner section.
            assert manager.status()["mining"]["mined_total"] == 1
        finally:
            service.close()
            gateway.close()

    def test_background_loop_runs_cycles(self, calendar_pair):
        import time

        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(
            app, db, mode="propose_only", interval_s=0.05
        )
        try:
            service.start()
            deadline = time.time() + 5.0
            while service.cycles == 0 and time.time() < deadline:
                time.sleep(0.02)
            assert service.cycles > 0
            service.stop()
            settled = service.cycles
            time.sleep(0.2)
            assert service.cycles == settled  # loop actually stopped
        finally:
            service.close()
            gateway.close()

    def test_mined_policy_text_round_trips_to_the_same_fingerprint(
        self, calendar_pair
    ):
        from repro.policy.serialize import policy_from_text

        app, db = calendar_pair
        gateway, manager, service = make_mining_stack(app, db, mode="propose_only")
        try:
            connection = drive_attendance(gateway, range(1, 6))
            seed_gap(gateway, manager, connection)
            (fingerprint,) = service.run_once()["mined"]
            text = policy_to_text(service.candidates[fingerprint].policy)
            restored = policy_from_text(text, db.schema)
            assert restored.fingerprint() == fingerprint
            assert restored.meta["provenance"] == "mined"
        finally:
            service.close()
            gateway.close()
