"""AuditMiner: gap-filling and tightening candidates from audit windows."""

from __future__ import annotations

import random

from repro.enforce.decision import PolicyViolation
from repro.mining import AuditMiner, AuditStream, MiningConfig
from repro.mining.miner import reconcile_by_fingerprint
from repro.policy.serialize import policy_from_text, policy_to_text
from repro.serve import EnforcementGateway, GatewayConfig

from tests.mining.conftest import without_view


def build_gap_window(app, db, gap_view="V2"):
    """Drive traffic under the full policy, reload minus ``gap_view``,
    and return (gateway, window, reduced_policy). The window holds
    v1-audited allows the reduced (current) policy cannot re-derive."""
    full = app.ground_truth_policy()
    gateway = EnforcementGateway(db, full, GatewayConfig())
    stream = AuditStream()
    gateway.decision_audit = stream
    subscription = stream.subscribe(cap=1024)
    connection = gateway.connect(1)
    for eid in range(1, 6):
        connection.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
    connection.query("SELECT * FROM Events WHERE EId = 2")  # V2-justified
    reduced = without_view(full, gap_view)
    from repro.lifecycle.reload import hot_reload

    hot_reload(gateway, reduced, version=2, provenance="hand-written")
    for eid in range(1, 4):
        connection.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
    return gateway, subscription.drain(), reduced


class TestGapFilling:
    def test_underivable_allow_yields_a_gap_candidate(self, calendar_pair):
        app, db = calendar_pair
        gateway, window, reduced = build_gap_window(app, db)
        try:
            miner = AuditMiner(db, MiningConfig(min_window=4))
            report = miner.mine(reduced, 2, window)
            assert report.underivable_allows == 1
            gaps = [c for c in report.candidates if c.kind == "gap-fill"]
            assert len(gaps) == 1
            candidate = gaps[0]
            assert candidate.view_name == "G1"
            assert "Events" in candidate.view_sql
            assert candidate.source_version == 2
            assert 0.0 < candidate.support <= 1.0
            assert candidate.confidence == 1.0  # re-derives its own evidence
            assert candidate.examples  # decision ids evidencing the gap
            # The candidate keeps every current view plus the mined one.
            assert len(candidate.policy) == len(reduced) + 1
        finally:
            gateway.close()

    def test_candidate_policy_rederives_the_gapped_query(self, calendar_pair):
        app, db = calendar_pair
        gateway, window, reduced = build_gap_window(app, db)
        gateway.close()
        miner = AuditMiner(db, MiningConfig(min_window=4))
        (candidate,) = [
            c for c in miner.mine(reduced, 2, window).candidates
            if c.kind == "gap-fill"
        ]
        verifier = EnforcementGateway(db, candidate.policy, GatewayConfig())
        try:
            connection = verifier.connect(1)
            connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
            connection.query("SELECT * FROM Events WHERE EId = 2")  # healed
        finally:
            verifier.close()

    def test_current_version_allows_are_never_gaps(self, calendar_pair):
        app, db = calendar_pair
        full = app.ground_truth_policy()
        gateway = EnforcementGateway(db, full, GatewayConfig())
        try:
            stream = AuditStream()
            gateway.decision_audit = stream
            subscription = stream.subscribe(cap=1024)
            connection = gateway.connect(1)
            for eid in range(1, 9):
                connection.query(
                    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                )
            report = AuditMiner(db, MiningConfig(min_window=4)).mine(
                full, 1, subscription.drain()
            )
            assert report.underivable_allows == 0
            assert not [c for c in report.candidates if c.kind == "gap-fill"]
        finally:
            gateway.close()

    def test_provenance_annotations_survive_text_round_trip(self, calendar_pair):
        app, db = calendar_pair
        gateway, window, reduced = build_gap_window(app, db)
        gateway.close()
        (candidate,) = [
            c
            for c in AuditMiner(db, MiningConfig(min_window=4))
            .mine(reduced, 2, window)
            .candidates
            if c.kind == "gap-fill"
        ]
        meta = candidate.policy.meta
        assert meta["provenance"] == "mined"
        assert meta["kind"] == "gap-fill"
        assert meta["miner"] == MiningConfig(min_window=4).fingerprint()
        assert ".." in meta["window"] and meta["examples"]
        restored = policy_from_text(policy_to_text(candidate.policy), db.schema)
        assert restored.meta == meta
        assert restored.fingerprint() == candidate.fingerprint


class TestTightening:
    def test_unexercised_view_yields_a_tighten_candidate(self, calendar_pair):
        app, db = calendar_pair
        full = app.ground_truth_policy()
        gateway = EnforcementGateway(db, full, GatewayConfig())
        try:
            stream = AuditStream()
            gateway.decision_audit = stream
            subscription = stream.subscribe(cap=1024)
            connection = gateway.connect(1)
            # Only V1-justified traffic: V2/V3/V4 never appear in any
            # allow's justification.
            for eid in range(1, 11):
                connection.query(
                    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                )
            report = AuditMiner(
                db, MiningConfig(min_window=4, max_candidates_per_cycle=8)
            ).mine(full, 1, subscription.drain())
            tightens = {c.view_name: c for c in report.candidates if c.kind == "tighten"}
            assert "V1" not in tightens  # exercised by every allow
            assert set(tightens) == {"V2", "V3", "V4"}
            candidate = tightens["V2"]
            assert candidate.confidence == 1.0
            assert len(candidate.policy) == len(full) - 1
            assert candidate.policy.meta["kind"] == "tighten"
        finally:
            gateway.close()

    def test_quiet_window_proposes_no_tightening(self, calendar_pair):
        """Too little current-version traffic is no evidence of disuse."""
        app, db = calendar_pair
        full = app.ground_truth_policy()
        gateway = EnforcementGateway(db, full, GatewayConfig())
        try:
            stream = AuditStream()
            gateway.decision_audit = stream
            subscription = stream.subscribe(cap=1024)
            connection = gateway.connect(1)
            connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 1")
            report = AuditMiner(db, MiningConfig(min_window=8)).mine(
                full, 1, subscription.drain()
            )
            assert not [c for c in report.candidates if c.kind == "tighten"]
        finally:
            gateway.close()

    def test_blocks_never_count_as_exercise(self, calendar_pair):
        app, db = calendar_pair
        full = app.ground_truth_policy()
        gateway = EnforcementGateway(db, full, GatewayConfig())
        try:
            stream = AuditStream()
            gateway.decision_audit = stream
            subscription = stream.subscribe(cap=1024)
            connection = gateway.connect(1)
            for eid in range(1, 9):
                connection.query(
                    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                )
            try:
                connection.query("SELECT * FROM Users WHERE UId = 99")
            except PolicyViolation:
                pass
            report = AuditMiner(
                db, MiningConfig(min_window=4, max_candidates_per_cycle=8)
            ).mine(full, 1, subscription.drain())
            assert report.blocks == 1
            names = {c.view_name for c in report.candidates if c.kind == "tighten"}
            assert "V3" in names  # the blocked Users probe exercised nothing
        finally:
            gateway.close()


class TestDeterminism:
    def test_shuffled_window_mines_byte_identical_candidates(self, calendar_pair):
        app, db = calendar_pair
        gateway, window, reduced = build_gap_window(app, db)
        gateway.close()
        miner = AuditMiner(db, MiningConfig(min_window=4, max_candidates_per_cycle=8))
        baseline = miner.mine(reduced, 2, list(window)).candidates
        assert baseline
        rng = random.Random(7)
        for _ in range(3):
            shuffled = list(window)
            rng.shuffle(shuffled)
            again = miner.mine(reduced, 2, shuffled).candidates
            assert [c.fingerprint for c in again] == [
                c.fingerprint for c in baseline
            ]
            assert [policy_to_text(c.policy) for c in again] == [
                policy_to_text(c.policy) for c in baseline
            ]


class TestReconciliation:
    def test_same_fingerprint_merges_across_shards(self):
        shard0 = [
            {"fingerprint": "abc", "kind": "gap-fill", "support": 0.10,
             "confidence": 1.0, "status": "parked", "examples": [1, 2]},
        ]
        shard1 = [
            {"fingerprint": "abc", "kind": "gap-fill", "support": 0.25,
             "confidence": 0.9, "status": "shadowing", "examples": [3]},
            {"fingerprint": "def", "kind": "tighten", "support": 0.05,
             "confidence": 1.0, "status": "parked", "examples": []},
        ]
        merged = reconcile_by_fingerprint([shard0, shard1])
        assert [entry["fingerprint"] for entry in merged] == ["abc", "def"]
        strongest = merged[0]
        assert strongest["support"] == 0.25  # headline = strongest shard
        assert strongest["status"] == "shadowing"
        assert strongest["examples"] == [1, 2, 3]  # union of evidence
        assert [s["shard"] for s in strongest["shards"]] == [0, 1]
        assert merged[1]["shards"][0]["shard"] == 1
