"""Property tests for containment: soundness against brute-force evaluation.

The key invariant: whenever ``cq_contained_in(q1, q2)`` says True, then on
every small random instance, ``q1``'s answers are a subset of ``q2``'s.
(The converse cannot be asserted — the test is deliberately incomplete for
comparisons — so only soundness is checked.)
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.evaluate.answers import evaluate_cq
from repro.relalg.containment import cq_contained_in
from repro.relalg.cq import CQ, Atom, Comp, Const, Var

# A fixed tiny vocabulary: R(a, b) and S(b) over small integer domains.
VALUES = [0, 1, 2]
VARS = [Var("x"), Var("y"), Var("z")]


def terms():
    return st.one_of(
        st.sampled_from(VARS),
        st.sampled_from([Const(v) for v in VALUES]),
    )


def atoms():
    return st.one_of(
        st.builds(lambda a, b: Atom("R", (a, b)), terms(), terms()),
        st.builds(lambda a: Atom("S", (a,)), terms()),
    )


def comps():
    return st.builds(
        lambda op, l, r: Comp(op, l, r),
        st.sampled_from(["=", "!=", "<", "<="]),
        terms(),
        terms(),
    )


def queries():
    def build(body, comp_list, head_var):
        bound_vars = {v for a in body for v in a.variables()}
        # Keep queries range-restricted (every comparison variable bound by
        # the body) — the only class the SQL translator produces, and the
        # class the containment test is complete-enough for.
        restricted = tuple(
            c
            for c in comp_list
            if all(not isinstance(t, Var) or t in bound_vars for t in (c.left, c.right))
        )
        head = (head_var,) if head_var in bound_vars else (Const(1),)
        return CQ(head=head, body=tuple(body), comps=restricted)

    return st.builds(
        build,
        st.lists(atoms(), min_size=1, max_size=3),
        st.lists(comps(), min_size=0, max_size=2),
        st.sampled_from(VARS),
    )


def instances():
    r_rows = st.lists(
        st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)),
        max_size=5,
    )
    s_rows = st.lists(st.tuples(st.sampled_from(VALUES)), max_size=3)
    return st.builds(
        lambda r, s: {"R": set(r), "S": set(s)},
        r_rows,
        s_rows,
    )


@given(queries(), queries(), instances())
@settings(max_examples=400, deadline=None)
def test_containment_soundness(q1, q2, instance):
    if q1.arity != q2.arity:
        return
    if cq_contained_in(q1, q2):
        answers1 = evaluate_cq(q1, instance)
        answers2 = evaluate_cq(q2, instance)
        assert answers1 <= answers2, (q1, q2, instance)


@given(queries())
@settings(max_examples=200, deadline=None)
def test_containment_reflexive(q):
    assert cq_contained_in(q, q)


# Note: transitivity of the *decision procedure* is deliberately not
# asserted — the test is sound but incomplete, and an incomplete test need
# not be transitive (semantic containment is, of course).
