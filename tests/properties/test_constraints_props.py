"""Property tests for the constraint closure: soundness via assignments.

If ``implies(c)`` is True, every concrete assignment satisfying the base
constraints must also satisfy ``c``; if ``consistent()`` is False, no
assignment may satisfy all base constraints. Assignments over a small
domain are enumerated exhaustively.
"""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.relalg.constraints import ConstraintSet, _const_cmp
from repro.relalg.cq import Comp, Const, Var

VARS = [Var("x"), Var("y"), Var("z")]
DOMAIN = [0, 1, 2]


def terms():
    return st.one_of(
        st.sampled_from(VARS),
        st.sampled_from([Const(v) for v in DOMAIN]),
    )


def comps():
    return st.builds(
        lambda op, l, r: Comp(op, l, r),
        st.sampled_from(["=", "!=", "<", "<="]),
        terms(),
        terms(),
    )


def satisfying_assignments(base):
    """All assignments over DOMAIN satisfying every comp in base."""
    for combo in itertools.product(DOMAIN, repeat=len(VARS)):
        assignment = dict(zip(VARS, combo))

        def value(term):
            return assignment[term] if isinstance(term, Var) else term.value

        if all(_const_cmp(c.op, value(c.left), value(c.right)) for c in base):
            yield assignment


@given(st.lists(comps(), min_size=0, max_size=4))
@settings(max_examples=300, deadline=None)
def test_inconsistent_means_unsatisfiable(base):
    closure = ConstraintSet(base)
    if not closure.consistent():
        assert not list(satisfying_assignments(base)), base


@given(st.lists(comps(), min_size=0, max_size=3), comps())
@settings(max_examples=300, deadline=None)
def test_implication_soundness(base, candidate):
    closure = ConstraintSet(base)
    if not closure.consistent():
        return
    if closure.implies(candidate):
        for assignment in satisfying_assignments(base):

            def value(term):
                return assignment[term] if isinstance(term, Var) else term.value

            assert _const_cmp(
                candidate.op, value(candidate.left), value(candidate.right)
            ), (base, candidate, assignment)


@given(st.lists(comps(), min_size=1, max_size=4))
@settings(max_examples=200, deadline=None)
def test_every_base_comp_implied(base):
    closure = ConstraintSet(base)
    if closure.consistent():
        for comp in base:
            assert closure.implies(comp), (base, comp)
