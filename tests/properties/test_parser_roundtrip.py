"""Property test: printer∘parser is the identity on generated statements."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sqlir import ast
from repro.sqlir.parser import parse_sql
from repro.sqlir.printer import to_sql

identifiers = st.sampled_from(["t", "users", "Events", "a1", "col_x", "B"])
column_names = st.sampled_from(["a", "b", "c", "Name", "EId", "x_y"])

literals = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000).map(ast.Literal),
    st.floats(min_value=-100, max_value=100, allow_nan=False).filter(
        lambda f: f == f
    ).map(lambda f: ast.Literal(round(f, 3))),
    st.text(
        alphabet="abc'x_ 9", min_size=0, max_size=6
    ).map(ast.Literal),
    st.sampled_from([ast.Literal(None), ast.Literal(True), ast.Literal(False)]),
)

columns = st.builds(
    ast.Column,
    table=st.one_of(st.none(), identifiers),
    name=column_names,
)

atoms = st.one_of(literals, columns, st.builds(ast.Param, index=st.none(), name=st.sampled_from(["MyUId", "P1"])))


def comparisons(operand):
    return st.builds(
        ast.Comparison,
        op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        left=operand,
        right=operand,
    )


predicates = st.recursive(
    st.one_of(
        comparisons(atoms),
        st.builds(ast.IsNull, expr=columns, negated=st.booleans()),
        st.builds(
            ast.InList,
            expr=columns,
            items=st.lists(literals, min_size=1, max_size=3).map(tuple),
            negated=st.booleans(),
        ),
    ),
    lambda children: st.one_of(
        st.builds(ast.Not, operand=children),
        st.builds(
            ast.BoolOp,
            op=st.just("AND"),
            operands=st.lists(children, min_size=2, max_size=3).map(tuple),
        ),
        st.builds(
            ast.BoolOp,
            op=st.just("OR"),
            operands=st.lists(children, min_size=2, max_size=3).map(tuple),
        ),
    ),
    max_leaves=8,
)

select_items = st.lists(
    st.builds(ast.SelectItem, expr=st.one_of(columns, literals), alias=st.none()),
    min_size=1,
    max_size=4,
).map(tuple)

table_refs = st.builds(ast.TableRef.of, identifiers, st.one_of(st.none(), identifiers))

selects = st.builds(
    ast.Select,
    items=select_items,
    sources=st.lists(table_refs, min_size=1, max_size=2).map(tuple),
    joins=st.just(()),
    where=st.one_of(st.none(), predicates),
    order_by=st.just(()),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    distinct=st.booleans(),
)


def normalize(stmt: ast.Statement) -> ast.Statement:
    """The parser flattens nested AND/OR; normalize generated trees the
    same way so equality is meaningful."""

    def flatten(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.BoolOp):
            operands = []
            for operand in expr.operands:
                if isinstance(operand, ast.BoolOp) and operand.op == expr.op:
                    operands.extend(operand.operands)
                else:
                    operands.append(operand)
            return ast.BoolOp(expr.op, tuple(operands))
        return expr

    return ast.map_statement(stmt, flatten)


@given(selects)
@settings(max_examples=300, deadline=None)
def test_print_parse_roundtrip(stmt):
    stmt = normalize(stmt)
    sql = to_sql(stmt)
    reparsed = parse_sql(sql)
    assert to_sql(reparsed) == sql
    assert normalize(reparsed) == stmt
