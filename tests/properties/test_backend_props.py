"""Property tests: MemoryBackend and SqliteBackend agree on every query.

The decision layer is backend-independent by construction; this file
pins the premise underneath it — both backends return the *same answer
multisets* for generated SPJ statements over the same generated data, and
stay in lockstep through DML. (Row order without ORDER BY is
backend-defined, so comparisons sort first.)
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine import Column, ColumnType, Schema, TableSchema, open_database

COLUMNS = ["a", "b"]


def make_schema() -> Schema:
    return Schema.of(
        TableSchema(
            "R",
            (
                Column("a", ColumnType.INT, nullable=False),
                Column("b", ColumnType.INT, nullable=False),
            ),
        ),
        TableSchema(
            "S",
            (
                Column("b", ColumnType.INT, nullable=False),
                Column("c", ColumnType.INT, nullable=False),
            ),
        ),
    )


def make_pair(rows_r, rows_s):
    """The same data loaded into one memory and one sqlite database."""
    databases = []
    for backend in ("memory", "sqlite"):
        db = open_database(make_schema(), backend=backend)
        db.insert_rows("R", rows_r)
        db.insert_rows("S", rows_s)
        databases.append(db)
    return databases


def assert_agree(mem, sq, sql, args=()):
    mem_result = mem.query(sql, args)
    sq_result = sq.query(sql, args)
    assert mem_result.columns == sq_result.columns
    assert sorted(map(repr, mem_result.rows)) == sorted(map(repr, sq_result.rows)), sql


values = st.integers(min_value=0, max_value=3)
r_rows = st.lists(st.tuples(values, values), max_size=6, unique=True)
s_rows = st.lists(st.tuples(values, values), max_size=6, unique=True)


def predicates():
    column = st.sampled_from(["R.a", "R.b"])
    op = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    value = st.integers(min_value=0, max_value=3)
    simple = st.builds(lambda c, o, v: f"{c} {o} {v}", column, op, value)
    return st.one_of(
        simple,
        st.builds(lambda p1, p2: f"{p1} AND {p2}", simple, simple),
        st.builds(lambda p1, p2: f"{p1} OR {p2}", simple, simple),
        st.builds(lambda p: f"NOT ({p})", simple),
        st.builds(lambda v: f"R.a IN ({v}, {v + 1})", values),
    )


@given(r_rows, s_rows, predicates())
@settings(max_examples=120, deadline=None)
def test_backends_agree_on_filtered_select(rows_r, rows_s, predicate):
    mem, sq = make_pair(rows_r, rows_s)
    assert_agree(mem, sq, f"SELECT R.a, R.b FROM R WHERE {predicate}")


@given(r_rows, s_rows, values)
@settings(max_examples=80, deadline=None)
def test_backends_agree_on_join(rows_r, rows_s, bound):
    mem, sq = make_pair(rows_r, rows_s)
    assert_agree(
        mem, sq, f"SELECT R.a, S.c FROM R JOIN S ON R.b = S.b WHERE S.c >= {bound}"
    )


@given(r_rows, s_rows)
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_distinct_and_aggregates(rows_r, rows_s):
    mem, sq = make_pair(rows_r, rows_s)
    assert_agree(mem, sq, "SELECT DISTINCT a FROM R")
    assert_agree(mem, sq, "SELECT COUNT(*) FROM R")
    assert_agree(mem, sq, "SELECT a, COUNT(*) AS n FROM R GROUP BY a ORDER BY a")
    assert_agree(mem, sq, "SELECT SUM(b) FROM R")


@given(r_rows, s_rows, predicates())
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_exists_subquery(rows_r, rows_s, predicate):
    mem, sq = make_pair(rows_r, rows_s)
    assert_agree(
        mem,
        sq,
        "SELECT R.a FROM R WHERE EXISTS"
        f" (SELECT 1 FROM S WHERE S.b = R.b AND {predicate})",
    )


@given(r_rows, values, values)
@settings(max_examples=80, deadline=None)
def test_backends_stay_in_lockstep_through_dml(rows_r, bound, replacement):
    mem, sq = make_pair(rows_r, [])
    update = "UPDATE R SET b = ? WHERE a <= ?"
    delete = "DELETE FROM R WHERE b = ?"
    assert mem.sql(update, [replacement, bound]) == sq.sql(update, [replacement, bound])
    assert mem.sql(delete, [bound]) == sq.sql(delete, [bound])
    assert mem.relation_contents() == sq.relation_contents()


@given(r_rows, values)
@settings(max_examples=60, deadline=None)
def test_snapshot_restore_preserves_agreement(rows_r, bound):
    mem, sq = make_pair(rows_r, [])
    snapshots = (mem.snapshot(), sq.snapshot())
    for db in (mem, sq):
        db.sql("DELETE FROM R WHERE a >= ?", [bound])
    for db, snapshot in zip((mem, sq), snapshots):
        db.restore(snapshot)
    assert mem.relation_contents() == sq.relation_contents()
    assert_agree(mem, sq, "SELECT a, b FROM R")
