"""Property test: the audit miner is a function of window *content*.

Mining runs against an audit window that arrives in whatever order the
serving tier interleaved sessions — and in a cluster, in whatever order
shards are polled. Promotion gates and cross-shard reconciliation both
key on candidate fingerprints, so the miner must produce byte-identical
candidates (same fingerprints, same serialized policies, same order) for
any permutation of the same window. This file pins that with generated
permutations; the deterministic spot-check lives in
``tests/mining/test_miner.py``.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lifecycle.reload import hot_reload
from repro.mining import AuditMiner, AuditStream, MiningConfig
from repro.policy import policy_to_text
from repro.policy.policy import Policy
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app

_FIXTURE: dict | None = None


def window_fixture() -> dict:
    """One audited traffic window with both candidate kinds latent in it:
    a gap (V2-justified allow predating a minus-V2 reload) and unused
    views. Built once — the property only permutes it."""
    global _FIXTURE
    if _FIXTURE is not None:
        return _FIXTURE
    app = calendar_app.make_app()
    db = app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    full = app.ground_truth_policy()
    gateway = EnforcementGateway(db, full, GatewayConfig())
    stream = AuditStream()
    gateway.decision_audit = stream
    subscription = stream.subscribe(cap=1024)
    connection = gateway.connect(1)
    for eid in range(1, 6):
        connection.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
    connection.query("SELECT * FROM Events WHERE EId = 2")
    reduced = Policy([v for v in full.views if v.name != "V2"], name="minus-V2")
    hot_reload(gateway, reduced, version=2, provenance="hand-written")
    for eid in range(1, 4):
        connection.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
    window = subscription.drain()
    gateway.close()
    miner = AuditMiner(db, MiningConfig(min_window=4, max_candidates_per_cycle=8))
    baseline = miner.mine(reduced, 2, window).candidates
    assert baseline  # the fixture must have something to permute
    _FIXTURE = {
        "miner": miner,
        "reduced": reduced,
        "window": window,
        "fingerprints": [c.fingerprint for c in baseline],
        "texts": [policy_to_text(c.policy) for c in baseline],
    }
    return _FIXTURE


class TestMinerDeterminism:
    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_any_ingest_order_mines_byte_identical_candidates(self, data):
        fx = window_fixture()
        shuffled = data.draw(st.permutations(fx["window"]))
        report = fx["miner"].mine(fx["reduced"], 2, shuffled)
        assert [c.fingerprint for c in report.candidates] == fx["fingerprints"]
        assert [policy_to_text(c.policy) for c in report.candidates] == fx["texts"]
        # Mining the permutation again is idempotent: the miner holds no
        # state between passes that could leak into candidate content.
        again = fx["miner"].mine(fx["reduced"], 2, shuffled)
        assert [c.fingerprint for c in again.candidates] == fx["fingerprints"]
