"""Property tests for the engine and its agreement with the CQ evaluator.

The central invariant: for every generated SPJ query, executing it through
the engine gives the same answer set as translating it to a CQ and
evaluating the CQ over the raw relation contents. This ties the two
independent evaluation paths (executor vs reasoning layer) together.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine import Column, ColumnType, Database, Schema, TableSchema
from repro.evaluate.answers import evaluate_ucq
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select

COLUMNS = ["a", "b"]


def make_db(rows_r, rows_s):
    schema = Schema.of(
        TableSchema(
            "R",
            (Column("a", ColumnType.INT, nullable=False),
             Column("b", ColumnType.INT, nullable=False)),
        ),
        TableSchema(
            "S",
            (Column("b", ColumnType.INT, nullable=False),
             Column("c", ColumnType.INT, nullable=False)),
        ),
    )
    db = Database(schema)
    db.insert_rows("R", rows_r)
    db.insert_rows("S", rows_s)
    return db


values = st.integers(min_value=0, max_value=3)
r_rows = st.lists(st.tuples(values, values), max_size=6, unique=True)
s_rows = st.lists(st.tuples(values, values), max_size=6, unique=True)


def predicates():
    column = st.sampled_from(["R.a", "R.b"])
    op = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    value = st.integers(min_value=0, max_value=3)
    simple = st.builds(lambda c, o, v: f"{c} {o} {v}", column, op, value)
    return st.one_of(
        simple,
        st.builds(lambda p1, p2: f"{p1} AND {p2}", simple, simple),
        st.builds(lambda p1, p2: f"{p1} OR {p2}", simple, simple),
        st.builds(lambda v: f"R.a IN ({v}, {v + 1})", values),
    )


@given(r_rows, s_rows, predicates())
@settings(max_examples=200, deadline=None)
def test_executor_agrees_with_cq_evaluator_single_table(rows_r, rows_s, predicate):
    db = make_db(rows_r, rows_s)
    sql = f"SELECT R.a, R.b FROM R WHERE {predicate}"
    engine_rows = set(db.query(sql).rows)
    ucq = translate_select(parse_select(sql), db.schema)
    cq_rows = evaluate_ucq(ucq, db.relation_contents())
    assert engine_rows == cq_rows


@given(r_rows, s_rows, st.integers(min_value=0, max_value=3))
@settings(max_examples=150, deadline=None)
def test_executor_agrees_with_cq_evaluator_join(rows_r, rows_s, bound):
    db = make_db(rows_r, rows_s)
    sql = (
        "SELECT R.a, S.c FROM R JOIN S ON R.b = S.b"
        f" WHERE S.c >= {bound}"
    )
    engine_rows = set(db.query(sql).rows)
    ucq = translate_select(parse_select(sql), db.schema)
    cq_rows = evaluate_ucq(ucq, db.relation_contents())
    assert engine_rows == cq_rows


@given(r_rows)
@settings(max_examples=100, deadline=None)
def test_distinct_matches_set_semantics(rows_r):
    db = make_db(rows_r, [])
    engine_rows = db.query("SELECT DISTINCT a FROM R").rows
    assert len(engine_rows) == len(set(engine_rows))
    assert set(engine_rows) == {(a,) for a, _ in rows_r}


@given(r_rows, st.integers(min_value=0, max_value=5))
@settings(max_examples=100, deadline=None)
def test_limit_bounds_result(rows_r, limit):
    db = make_db(rows_r, [])
    result = db.query(f"SELECT a FROM R LIMIT {limit}")
    assert len(result) == min(limit, len(rows_r))


@given(r_rows)
@settings(max_examples=100, deadline=None)
def test_count_star_matches_len(rows_r):
    db = make_db(rows_r, [])
    assert db.query("SELECT COUNT(*) FROM R").scalar() == len(rows_r)
