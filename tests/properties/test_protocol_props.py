"""Property tests: wire frames round-trip arbitrary JSON payloads.

The protocol is length-prefixed JSON, so the property worth having is
that any JSON-object message with a string ``type`` survives
``encode_frame`` → framing → ``decode_payload`` bit-exactly — including
astral-plane unicode, deeply nested containers, huge strings, and the
float/int/bool/None corners JSON is touchy about.
"""

from __future__ import annotations

import socket
import threading

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.net import protocol

# Unicode that has bitten real wire formats: astral plane, combining
# marks, RTL, NULs, surrogate-adjacent code points, JSON syntax chars.
_spicy_text = st.text(
    alphabet=st.one_of(
        st.characters(min_codepoint=0x20, max_codepoint=0x7E),
        st.characters(min_codepoint=0xA0, max_codepoint=0x2FF),
        st.sampled_from(list("🙂💥\U0001f9ea\u202e\u0301\x00\"\\{}[]:,\n\t")),
    ),
    max_size=40,
)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    _spicy_text,
)

_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_spicy_text, children, max_size=4),
    ),
    max_leaves=25,
)

_messages = st.fixed_dictionaries(
    {"type": st.sampled_from(["QUERY", "SQL", "TEMPLATE", "STATS"])},
    optional={
        "id": st.integers(min_value=0, max_value=2**31),
        "sql": _spicy_text,
        "bindings": st.dictionaries(_spicy_text, _scalars, max_size=4),
        "payload": _json_values,
    },
)


class TestFrameRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(message=_messages)
    def test_encode_decode_identity(self, message):
        frame = protocol.encode_frame(message)
        assert protocol.decode_payload(frame[4:]) == message

    @settings(max_examples=50, deadline=None)
    @given(message=_messages)
    def test_blocking_socket_framing_round_trips(self, message):
        """Through real sockets, chunked reads and all."""
        server, client = socket.socketpair()
        try:
            received = {}

            def serve():
                received["message"] = protocol.read_frame(server)

            thread = threading.Thread(target=serve)
            thread.start()
            protocol.write_frame(client, message)
            thread.join(timeout=10)
            assert received["message"] == message
        finally:
            server.close()
            client.close()

    def test_large_payload_round_trips(self):
        message = {"type": "SQL", "blob": "🙂" * 50_000, "rows": [[1, None]] * 5_000}
        frame = protocol.encode_frame(message)
        assert len(frame) > 100_000
        assert protocol.decode_payload(frame[4:]) == message

    def test_deeply_nested_payload_round_trips(self):
        nested: object = "leaf — ünïcode"
        for _ in range(60):
            nested = {"k": [nested]}
        message = {"type": "QUERY", "deep": nested}
        assert protocol.decode_payload(protocol.encode_frame(message)[4:]) == message


class TestFrameRejection:
    def test_oversized_frame_rejected_before_read(self):
        message = {"type": "SQL", "blob": "x" * 2_000}
        frame = protocol.encode_frame(message)
        server, client = socket.socketpair()
        try:
            client.sendall(frame)
            with pytest.raises(protocol.FrameTooLarge):
                protocol.read_frame(server, max_frame_bytes=1_000)
        finally:
            server.close()
            client.close()

    @settings(max_examples=50, deadline=None)
    @given(junk=st.binary(max_size=64))
    def test_non_json_payloads_raise_malformed_not_crash(self, junk):
        try:
            message = protocol.decode_payload(junk)
        except protocol.NetError as error:
            assert error.code == protocol.ERR_MALFORMED
        else:
            # Anything that decodes must satisfy the frame contract.
            assert isinstance(message, dict)
            assert isinstance(message["type"], str)

    def test_non_object_json_rejected(self):
        for payload in (b"[1,2]", b'"just a string"', b"42", b'{"type": 7}'):
            with pytest.raises(protocol.NetError):
                protocol.decode_payload(payload)
