"""Property tests for the rewriting engine.

Soundness of the two validated entry points, checked semantically on
random instances:

* an *equivalent* rewriting's expansion must produce exactly the query's
  answers on every instance, and evaluating the rewriting over the view
  images must give the same answers (the compliance guarantee);
* every *maximally contained* rewriting's expansion must produce a subset
  of the query's answers on every instance.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.evaluate.answers import evaluate_cq
from repro.relalg.cq import CQ, Atom, Comp, Const, Var
from repro.relalg.rewrite import (
    ViewDef,
    find_equivalent_rewriting,
    maximally_contained_rewritings,
)

VALUES = [0, 1, 2]
VARS = [Var("x"), Var("y"), Var("z")]


def terms():
    return st.one_of(
        st.sampled_from(VARS),
        st.sampled_from([Const(v) for v in VALUES]),
    )


def atoms():
    return st.one_of(
        st.builds(lambda a, b: Atom("R", (a, b)), terms(), terms()),
        st.builds(lambda a: Atom("S", (a,)), terms()),
    )


def range_restricted(body, comp_list, head_vars):
    bound = {v for a in body for v in a.variables()}
    comps = tuple(
        c
        for c in comp_list
        if all(not isinstance(t, Var) or t in bound for t in (c.left, c.right))
    )
    head = tuple(v for v in head_vars if v in bound) or (Const(1),)
    return CQ(head=head, body=tuple(body), comps=comps)


def queries():
    return st.builds(
        range_restricted,
        st.lists(atoms(), min_size=1, max_size=2),
        st.lists(
            st.builds(
                lambda op, l, r: Comp(op, l, r),
                st.sampled_from(["=", "<", "<="]),
                terms(),
                terms(),
            ),
            max_size=1,
        ),
        st.lists(st.sampled_from(VARS), min_size=1, max_size=2, unique=True),
    )


def instances():
    return st.builds(
        lambda r, s: {"R": set(r), "S": set(s)},
        st.lists(st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)), max_size=5),
        st.lists(st.tuples(st.sampled_from(VALUES)), max_size=3),
    )


@given(queries(), queries(), instances())
@settings(max_examples=250, deadline=None)
def test_equivalent_rewriting_soundness(query, view_cq, instance):
    views = [ViewDef("V", view_cq)]
    rewriting = find_equivalent_rewriting(query, views)
    if rewriting is None:
        return
    # 1. The expansion agrees with the query on every instance.
    assert evaluate_cq(rewriting.expansion, instance) == evaluate_cq(query, instance)
    # 2. The compliance guarantee: evaluating the rewriting over the VIEW
    # IMAGE (not the base tables) also reproduces the query's answer.
    image = {"V": evaluate_cq(view_cq, instance)}
    assert evaluate_cq(rewriting.rewriting, image) == evaluate_cq(query, instance)


@given(queries(), queries(), instances())
@settings(max_examples=250, deadline=None)
def test_contained_rewriting_soundness(query, view_cq, instance):
    views = [ViewDef("V", view_cq)]
    for rewriting in maximally_contained_rewritings(query, views, max_candidates=200):
        expansion_answers = evaluate_cq(rewriting.expansion, instance)
        query_answers = evaluate_cq(query, instance)
        assert expansion_answers <= query_answers, (query, view_cq, rewriting)
        # The narrowed answers are computable from the view image alone.
        image = {"V": evaluate_cq(view_cq, instance)}
        assert evaluate_cq(rewriting.rewriting, image) == expansion_answers
