"""AppRunner harness tests."""

import random

import pytest

from repro.enforce import DecisionCache
from repro.workloads import calendar_app
from repro.workloads.runner import AppRunner, Request


@pytest.fixture
def setup():
    app = calendar_app.make_app()
    db = calendar_app.make_database(10, 3)
    return app, db


class TestConnectionModes:
    def test_unknown_mode_rejected(self, setup):
        app, db = setup
        with pytest.raises(ValueError):
            AppRunner(app, db, mode="nope")

    def test_proxy_mode_requires_policy(self, setup):
        app, db = setup
        with pytest.raises(ValueError):
            AppRunner(app, db, mode="proxy")

    def test_proxy_reused_per_session(self, setup):
        app, db = setup
        runner = AppRunner(
            app, db, mode="proxy", policy=app.ground_truth_policy()
        )
        first = runner.connection_for({"user_id": 1})
        second = runner.connection_for({"user_id": 1})
        other = runner.connection_for({"user_id": 2})
        assert first is second
        assert first is not other
        assert len(runner.proxies()) == 2

    def test_fresh_session_per_request(self, setup):
        app, db = setup
        runner = AppRunner(
            app,
            db,
            mode="proxy",
            policy=app.ground_truth_policy(),
            fresh_session_per_request=True,
        )
        first = runner.connection_for({"user_id": 1})
        second = runner.connection_for({"user_id": 1})
        assert first is not second

    def test_history_disabled_propagates(self, setup):
        app, db = setup
        runner = AppRunner(
            app,
            db,
            mode="proxy",
            policy=app.ground_truth_policy(),
            history_enabled=False,
        )
        uid, eid = db.query("SELECT UId, EId FROM Attendance").first()
        outcome = runner.run(
            Request("show_event", {"event_id": eid}, {"user_id": uid})
        )
        # With history off, the detail fetch inside show_event blocks.
        assert outcome.blocked

    def test_shared_cache_across_sessions(self, setup):
        app, db = setup
        policy = app.ground_truth_policy()
        cache = DecisionCache(policy)
        runner = AppRunner(app, db, mode="proxy", policy=policy, cache=cache)
        requests = app.request_stream(db, random.Random(2), 30)
        runner.run_all(requests)
        assert cache.hits > 0


class TestOutcomes:
    def test_block_reason_captured(self, setup):
        app, db = setup
        gapped = type(app.ground_truth_policy())(
            [v for v in app.ground_truth_policy().views if v.name != "V3"]
        )
        runner = AppRunner(app, db, mode="proxy", policy=gapped)
        outcome = runner.run(Request("my_profile", {}, {"user_id": 1}))
        assert outcome.blocked
        assert "BLOCK" in outcome.block_reason

    def test_abort_is_not_block(self, setup):
        app, db = setup
        runner = AppRunner(
            app, db, mode="proxy", policy=app.ground_truth_policy()
        )
        attended = {
            r[1] for r in db.query(
                "SELECT UId, EId FROM Attendance WHERE UId = 1"
            ).rows
        }
        eid = next(
            e for (e,) in db.query("SELECT EId FROM Events").rows
            if e not in attended
        )
        outcome = runner.run(
            Request("show_event", {"event_id": eid}, {"user_id": 1})
        )
        assert not outcome.blocked
        assert outcome.outcome is not None
        assert outcome.outcome.aborted

    def test_request_hashable(self):
        a = Request("h", {"x": 1}, {"user_id": 2})
        b = Request("h", {"x": 1}, {"user_id": 2})
        assert hash(a) == hash(b)


class TestSessionBindings:
    def test_bindings_mapped_through_session_params(self, setup):
        app, db = setup
        assert app.session_bindings({"user_id": 9}) == {"MyUId": 9}

    def test_missing_attr_omitted(self, setup):
        app, db = setup
        assert app.session_bindings({"other": 1}) == {}
