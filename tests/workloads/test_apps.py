"""Workload-application invariants, parameterized over all four apps."""

import random

import pytest

from repro.enforce import DecisionCache, EnforcementProxy, PolicyViolation, Session
from repro.workloads import calendar_app, employees, hospital, social
from repro.workloads.runner import AppRunner

ALL_APPS = [calendar_app, hospital, employees, social]


@pytest.fixture(params=ALL_APPS, ids=lambda m: m.make_app().name)
def app_and_db(request):
    app = request.param.make_app()
    db = app.make_database(app.default_size, 3)
    return app, db


class TestDataGeneration:
    def test_deterministic(self, app_and_db):
        app, _ = app_and_db
        a = app.make_database(10, 42)
        b = app.make_database(10, 42)
        assert a.relation_contents() == b.relation_contents()

    def test_seed_matters(self, app_and_db):
        app, _ = app_and_db
        a = app.make_database(10, 1)
        b = app.make_database(10, 2)
        assert a.relation_contents() != b.relation_contents()

    def test_size_scales(self, app_and_db):
        app, _ = app_and_db
        small = app.make_database(8, 1).total_rows()
        large = app.make_database(24, 1).total_rows()
        assert large > small


class TestCompliantWorkload:
    def test_direct_run_clean(self, app_and_db):
        app, db = app_and_db
        requests = app.request_stream(db, random.Random(7), 30)
        runner = AppRunner(app, db, mode="direct")
        outcomes = runner.run_all(requests)
        assert all(not o.blocked for o in outcomes)

    def test_zero_false_blocks_under_enforcement(self, app_and_db):
        """The headline E1 invariant: a compliant workload is never blocked."""
        app, db = app_and_db
        requests = app.request_stream(db, random.Random(7), 30)
        runner = AppRunner(
            app,
            db,
            mode="proxy",
            policy=app.ground_truth_policy(),
            cache=DecisionCache(app.ground_truth_policy()),
        )
        outcomes = runner.run_all(requests)
        blocked = [o for o in outcomes if o.blocked]
        assert not blocked, blocked[0].block_reason if blocked else None

    def test_proxy_results_match_direct(self, app_and_db):
        app, db = app_and_db
        requests = app.request_stream(db, random.Random(9), 15)
        direct = AppRunner(app, db, mode="direct").run_all(requests)
        proxied = AppRunner(
            app, db, mode="proxy", policy=app.ground_truth_policy()
        ).run_all(requests)
        for d, p in zip(direct, proxied):
            if d.outcome is None or d.outcome.returned is None:
                continue
            assert p.outcome is not None
            assert p.outcome.returned.rows == d.outcome.returned.rows


class TestAttackWorkload:
    def test_all_attacks_blocked(self, app_and_db):
        """The other E1 invariant: zero false allows on the probes."""
        app, db = app_and_db
        policy = app.ground_truth_policy()
        proxy = EnforcementProxy(db, policy, Session.for_user(1))
        for sql, args in app.attack_queries(db, 1):
            with pytest.raises(PolicyViolation):
                proxy.query(sql, args)


class TestRlsBaseline:
    def test_rls_mode_runs(self, app_and_db):
        app, db = app_and_db
        if not app.rls_predicates:
            pytest.skip("app has no RLS predicates")
        requests = app.request_stream(db, random.Random(7), 10)
        runner = AppRunner(app, db, mode="rls")
        # RLS silently filters; some handlers may abort on empty results,
        # but nothing raises.
        outcomes = runner.run_all(requests)
        assert len(outcomes) == 10
