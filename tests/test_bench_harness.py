"""Bench-harness formatting tests."""

import os

import pytest

from repro.bench.harness import format_cell, print_figure_series, print_table


class TestFormatCell:
    def test_integers_passthrough(self):
        assert format_cell(42) == "42"

    def test_large_floats_rounded(self):
        assert format_cell(1234.567) == "1235"

    def test_mid_floats_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_small_floats_four_decimals(self):
        assert format_cell(0.12345) == "0.1235"  # rounds, 4 decimals

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_strings_passthrough(self):
        assert format_cell("ok") == "ok"


class TestPrintTable:
    def test_renders_aligned_table(self, capsys):
        print_table("EX", "demo", ["a", "bb"], [[1, 2.5], ["xx", 3]])
        out = capsys.readouterr().out
        assert "== EX: demo ==" in out
        lines = out.strip().splitlines()
        header = next(line for line in lines if line.startswith("a"))
        assert "bb" in header

    def test_empty_rows_ok(self, capsys):
        print_table("EX", "empty", ["only"], [])
        assert "only" in capsys.readouterr().out

    def test_records_tsv_when_dir_exists(self, tmp_path, monkeypatch, capsys):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "_RESULTS_DIR", str(tmp_path))
        print_table("EX9", "demo", ["a"], [[1], [2]])
        capsys.readouterr()
        lines = (tmp_path / "EX9.tsv").read_text().splitlines()
        # Provenance header first (commit / python / cpus), then the data.
        provenance, data = lines[:3], lines[3:]
        assert [line.split(":")[0] for line in provenance] == [
            "# commit",
            "# python",
            "# cpus",
        ]
        assert data == ["a", "1", "2"]

    def test_no_dir_no_write(self, tmp_path, monkeypatch, capsys):
        import repro.bench.harness as harness

        missing = tmp_path / "nope"
        monkeypatch.setattr(harness, "_RESULTS_DIR", str(missing))
        print_table("EX9", "demo", ["a"], [[1]])
        capsys.readouterr()
        assert not missing.exists()


class TestFigureSeries:
    def test_series_columns(self, capsys):
        print_figure_series(
            "F1", "curve", "x", [1, 2, 3], {"s1": [10, 20, 30], "s2": [0.1, 0.2, 0.3]}
        )
        out = capsys.readouterr().out
        assert "x" in out and "s1" in out and "s2" in out
        assert "30" in out
