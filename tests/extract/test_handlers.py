"""Handler-DSL concrete-interpreter tests."""

import pytest

from repro.extract.handlers import (
    Abort,
    And,
    Assign,
    Compare,
    ConstArg,
    FieldRef,
    ForEach,
    Handler,
    If,
    IsEmpty,
    Not,
    ParamRef,
    Query,
    Return,
    SessionRef,
    run_handler,
)
from repro.util.errors import DbacError
from repro.workloads import calendar_app


@pytest.fixture
def db(calendar_db):
    return calendar_db


def show_event():
    return calendar_app.make_handlers()["show_event"]


class TestListing1:
    def test_attended_event_returns_details(self, db):
        uid, eid = db.query("SELECT UId, EId FROM Attendance").first()
        outcome = run_handler(show_event(), db, {"event_id": eid}, {"user_id": uid})
        assert not outcome.aborted
        assert outcome.returned is not None
        assert len(outcome.returned) == 1
        assert [sql for sql, _ in outcome.queries_issued] == [
            "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
            "SELECT * FROM Events WHERE EId = ?",
        ]

    def test_unattended_event_aborts_before_fetch(self, db):
        attended = {
            row[1]
            for row in db.query("SELECT UId, EId FROM Attendance WHERE UId = 1").rows
        }
        eid = next(
            e for (e,) in db.query("SELECT EId FROM Events").rows if e not in attended
        )
        outcome = run_handler(show_event(), db, {"event_id": eid}, {"user_id": 1})
        assert outcome.aborted
        assert outcome.abort_message == "event not found"
        assert len(outcome.queries_issued) == 1  # Q2 never issued

    def test_missing_param_rejected(self, db):
        with pytest.raises(DbacError):
            run_handler(show_event(), db, {}, {"user_id": 1})

    def test_missing_session_attribute_rejected(self, db):
        with pytest.raises(DbacError):
            run_handler(show_event(), db, {"event_id": 1}, {})


class TestForEach:
    def test_foreach_iterates_rows(self, db):
        handler = calendar_app.make_handlers()["my_events"]
        uid = db.query("SELECT UId FROM Attendance").first()[0]
        count = len(db.query("SELECT EId FROM Attendance WHERE UId = ?", [uid]))
        outcome = run_handler(handler, db, {}, {"user_id": uid})
        # One list query plus one detail query per attended event.
        assert len(outcome.queries_issued) == 1 + count

    def test_foreach_over_empty_result(self, db):
        handler = Handler(
            name="h",
            params=(),
            body=(
                Assign("rows", Query("SELECT EId FROM Attendance WHERE UId = 99999")),
                ForEach(
                    "row",
                    "rows",
                    body=(
                        Assign(
                            "x",
                            Query(
                                "SELECT * FROM Events WHERE EId = ?",
                                (FieldRef("row", "EId"),),
                            ),
                        ),
                    ),
                ),
                Return(None),
            ),
        )
        outcome = run_handler(handler, db, {}, {})
        assert len(outcome.queries_issued) == 1


class TestConditions:
    def test_compare_on_field(self, db):
        handler = Handler(
            name="h",
            params=("eid",),
            body=(
                Assign(
                    "event",
                    Query("SELECT Title FROM Events WHERE EId = ?", (ParamRef("eid"),)),
                ),
                If(IsEmpty("event"), then=(Abort("gone"),)),
                If(
                    Compare("=", FieldRef("event", "Title"), ConstArg("standup")),
                    then=(Return(None),),
                    orelse=(Abort("not standup"),),
                ),
            ),
        )
        standup = db.query(
            "SELECT EId FROM Events WHERE Title = 'standup'"
        ).first()
        other = db.query(
            "SELECT EId FROM Events WHERE Title <> 'standup'"
        ).first()
        if standup:
            assert not run_handler(handler, db, {"eid": standup[0]}, {}).aborted
        if other:
            assert run_handler(handler, db, {"eid": other[0]}, {}).aborted

    def test_and_not_conditions(self, db):
        handler = Handler(
            name="h",
            params=("a", "b"),
            body=(
                If(
                    And(
                        (
                            Compare("<", ParamRef("a"), ParamRef("b")),
                            Not(Compare("=", ParamRef("a"), ConstArg(0))),
                        )
                    ),
                    then=(Return(None),),
                    orelse=(Abort("no"),),
                ),
            ),
        )
        assert not run_handler(handler, db, {"a": 1, "b": 2}, {}).aborted
        assert run_handler(handler, db, {"a": 0, "b": 2}, {}).aborted
        assert run_handler(handler, db, {"a": 3, "b": 2}, {}).aborted

    def test_fieldref_outside_foreach_uses_first_row(self, db):
        handler = Handler(
            name="h",
            params=(),
            body=(
                Assign("users", Query("SELECT UId, Name FROM Users WHERE UId = 1")),
                If(IsEmpty("users"), then=(Abort("none"),)),
                Return(
                    Query(
                        "SELECT EId FROM Attendance WHERE UId = ?",
                        (FieldRef("users", "UId"),),
                    )
                ),
            ),
        )
        outcome = run_handler(handler, db, {}, {})
        assert outcome.returned is not None

    def test_fieldref_on_empty_result_raises(self, db):
        handler = Handler(
            name="h",
            params=(),
            body=(
                Assign("users", Query("SELECT UId FROM Users WHERE UId = 9999")),
                Return(
                    Query(
                        "SELECT EId FROM Attendance WHERE UId = ?",
                        (FieldRef("users", "UId"),),
                    )
                ),
            ),
        )
        with pytest.raises(DbacError):
            run_handler(handler, db, {}, {})
