"""Black-box miner tests: generalization, guards, and the three controls."""

import random

import pytest

from repro.extract.miner import MinerConfig, TraceMiner
from repro.policy import View, compare_policies
from repro.policy.compare import view_covered_by
from repro.workloads import calendar_app
from repro.workloads.runner import Request

OPAQUE = frozenset(
    {
        ("Attendance", "EId"),
        ("Attendance", "UId"),
        ("Events", "EId"),
        ("Users", "UId"),
    }
)


def mine_calendar(n_requests=120, config=None, seed=5):
    app = calendar_app.make_app()
    db = calendar_app.make_database(12, seed)
    rng = random.Random(seed)
    requests = app.request_stream(db, rng, n_requests)
    miner = TraceMiner(app, db, config or MinerConfig(opaque_columns=OPAQUE))
    policy = miner.mine(requests)
    return app, policy, miner


class TestFullMiner:
    def test_exact_recovery_with_enough_traces(self):
        app, policy, _ = mine_calendar()
        comparison = compare_policies(policy, app.ground_truth_policy())
        assert comparison.exact, comparison.describe()

    def test_guard_detected_for_show_event(self):
        app, policy, miner = mine_calendar()
        assert miner.report.guarded_templates >= 1
        # The detail view must be guarded (joined with Attendance), not broad.
        db = calendar_app.make_database(12, 5)
        broad = View("B", "SELECT Title FROM Events", db.schema)
        assert not view_covered_by(broad, policy)

    def test_user_id_generalizes_across_sessions(self):
        app, policy, _ = mine_calendar()
        params = {name for view in policy for name in view.param_names}
        assert params == {"MyUId"}


class TestLearningCurve:
    def test_few_traces_under_generalize(self):
        """E5 shape: with very few traces, recall is imperfect."""
        app, few_policy, _ = mine_calendar(n_requests=2)
        app2, many_policy, _ = mine_calendar(n_requests=150)
        truth = app.ground_truth_policy()
        few = compare_policies(few_policy, truth)
        many = compare_policies(many_policy, truth)
        assert many.recall >= few.recall
        assert many.recall == 1.0


class TestHintsControl:
    def test_hints_generalize_singleton_constants(self):
        """A single observation of show_event pins the event id unless the
        opacity hint declares event ids opaque."""
        app = calendar_app.make_app()
        db = calendar_app.make_database(12, 5)
        uid, eid = db.query("SELECT UId, EId FROM Attendance").first()
        request = Request("show_event", {"event_id": eid}, {"user_id": uid})

        with_hints = TraceMiner(
            app, db, MinerConfig(opaque_columns=OPAQUE, active_discovery=False)
        ).mine([request])
        without_hints = TraceMiner(
            app, db, MinerConfig(opaque_columns=frozenset(), active_discovery=False)
        ).mine([request])

        generic = View(
            "G",
            "SELECT e.EId, e.Title, e.Time, e.Loc FROM Events e"
            " JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
            db.schema,
        )
        assert view_covered_by(generic, with_hints)
        assert not view_covered_by(generic, without_hints)


class TestActiveControl:
    def test_active_discovery_generalizes_data_derived_constant(self):
        """my_events' per-row detail queries carry concrete event ids; the
        mutate-and-re-run probe proves they are data-derived.

        The user attends exactly one event, so the constant is observed
        only once — statistics alone cannot generalize it.
        """
        app = calendar_app.make_app()
        db = calendar_app.make_database(12, 5)
        db.sql("INSERT INTO Users VALUES (100, 'solo')")
        db.sql("INSERT INTO Attendance VALUES (100, 3)")
        request = Request("my_events", {}, {"user_id": 100})

        active = TraceMiner(
            app, db, MinerConfig(opaque_columns=frozenset(), active_discovery=True)
        ).mine([request])
        passive = TraceMiner(
            app, db, MinerConfig(opaque_columns=frozenset(), active_discovery=False)
        ).mine([request])

        generic = View(
            "G",
            "SELECT e.EId, e.Title, e.Time, e.Loc FROM Events e"
            " JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
            db.schema,
        )
        assert view_covered_by(generic, active)
        assert not view_covered_by(generic, passive)

    def test_database_unchanged_after_probes(self):
        app = calendar_app.make_app()
        db = calendar_app.make_database(12, 5)
        before = db.relation_contents()
        uid = db.query("SELECT UId FROM Attendance").first()[0]
        TraceMiner(app, db, MinerConfig(active_discovery=True)).mine(
            [Request("my_events", {}, {"user_id": uid})]
        )
        assert db.relation_contents() == before


class TestBudgetControl:
    def test_budget_caps_policy_size(self):
        app = calendar_app.make_app()
        db = calendar_app.make_database(12, 5)
        rng = random.Random(5)
        requests = app.request_stream(db, rng, 60)
        config = MinerConfig(
            opaque_columns=frozenset(),
            active_discovery=False,
            size_budget=5,
        )
        miner = TraceMiner(app, db, config)
        policy = miner.mine(requests)
        assert len(policy) <= 5

    def test_no_budget_keeps_all_templates(self):
        app = calendar_app.make_app()
        db = calendar_app.make_database(12, 5)
        rng = random.Random(5)
        requests = app.request_stream(db, rng, 60)
        config = MinerConfig(
            opaque_columns=frozenset(), active_discovery=False, size_budget=None
        )
        policy = TraceMiner(app, db, config).mine(requests)
        assert len(policy) >= 4
