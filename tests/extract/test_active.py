"""Active constraint-discovery unit tests (the §3.2.2 mutate-and-re-run probes)."""

import pytest

from repro.extract.active import ActiveConstraintDiscovery, _mutated_value
from repro.extract.miner import MinerConfig, RecordingConnection, TraceMiner
from repro.extract.handlers import run_handler
from repro.workloads import calendar_app
from repro.workloads.runner import Request


@pytest.fixture
def setup():
    app = calendar_app.make_app()
    db = calendar_app.make_database(12, 5)
    return app, db


def record(app, db, request):
    recorder = RecordingConnection(db)
    run_handler(app.handlers[request.handler], recorder, request.params, request.session)
    from repro.extract.miner import RequestTrace

    return RequestTrace(request=request, events=recorder.events)


class TestMutatedValue:
    def test_types(self):
        assert _mutated_value(5) == 5 + 1_000_003
        assert _mutated_value("x") == "x_mutated"
        assert _mutated_value(True) is False
        assert _mutated_value(2.0) == 2.0 + 1_000_003.0


class TestConstantProbes:
    def test_data_derived_constant_detected(self, setup):
        app, db = setup
        db.sql("INSERT INTO Users VALUES (200, 'probe')")
        db.sql("INSERT INTO Attendance VALUES (200, 4)")
        trace = record(app, db, Request("my_events", {}, {"user_id": 200}))
        discovery = ActiveConstraintDiscovery(app, db)
        # The detail query's event-id constant (slot for EId) flows from
        # the prior attendance listing.
        detail = next(
            e for e in trace.events if "Events" in e.statement.sources[0].name
        )
        slot = detail.values.index(4)
        assert discovery.constant_is_data_derived(trace, detail, slot)

    def test_code_constant_not_data_derived(self, setup):
        app, db = setup
        uid, eid = db.query("SELECT UId, EId FROM Attendance").first()
        trace = record(
            app, db, Request("show_event", {"event_id": eid}, {"user_id": uid})
        )
        discovery = ActiveConstraintDiscovery(app, db)
        check = trace.events[0]
        # The user-id slot comes from the session, not from prior data.
        slot = check.values.index(uid)
        assert not discovery.constant_is_data_derived(trace, check, slot)

    def test_database_restored_after_probe(self, setup):
        app, db = setup
        db.sql("INSERT INTO Users VALUES (200, 'probe')")
        db.sql("INSERT INTO Attendance VALUES (200, 4)")
        before = db.relation_contents()
        trace = record(app, db, Request("my_events", {}, {"user_id": 200}))
        discovery = ActiveConstraintDiscovery(app, db)
        detail = next(
            e for e in trace.events if "Events" in e.statement.sources[0].name
        )
        discovery.constant_is_data_derived(trace, detail, detail.values.index(4))
        assert db.relation_contents() == before


class TestGuardProbes:
    def test_real_guard_detected(self, setup):
        app, db = setup
        uid, eid = db.query("SELECT UId, EId FROM Attendance").first()
        trace = record(
            app, db, Request("show_event", {"event_id": eid}, {"user_id": uid})
        )
        discovery = ActiveConstraintDiscovery(app, db)
        detail = trace.events[1]
        guard_key = trace.events[0].sql_skeleton.statement
        assert discovery.guard_is_load_bearing(trace, detail, guard_key)

    def test_join_guard_kept_conservatively(self, setup):
        app, db = setup
        uid, eid = db.query("SELECT UId, EId FROM Attendance").first()
        trace = record(
            app, db, Request("event_attendees", {"event_id": eid}, {"user_id": uid})
        )
        discovery = ActiveConstraintDiscovery(app, db)
        # Fabricate a join-shaped guard event: the probe refuses to delete
        # join results and keeps the guard (conservative direction).
        final = trace.events[-1]
        if final.statement.joins:
            assert discovery.guard_is_load_bearing(
                trace, final, trace.events[0].sql_skeleton.statement
            )
