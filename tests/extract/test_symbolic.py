"""Symbolic-extraction tests: Listing 1 → {V1, V2} and beyond."""

import pytest

from repro.extract.symbolic import SymbolicExtractor
from repro.policy import Policy, View, compare_policies
from repro.policy.compare import view_covered_by
from repro.workloads import calendar_app, employees, hospital, social


class TestListing1:
    """Example 3.1: the show_event handler yields exactly V1 and V2."""

    @pytest.fixture
    def extracted(self, calendar_schema):
        extractor = SymbolicExtractor(calendar_schema)
        handlers = [calendar_app.make_handlers()["show_event"]]
        policy, report = extractor.extract(handlers)
        return policy, report, calendar_schema

    def test_two_views_extracted(self, extracted):
        policy, _, _ = extracted
        assert len(policy) == 2

    def test_v1_recovered(self, extracted):
        policy, _, schema = extracted
        truth_v1 = View(
            "T1", "SELECT EId FROM Attendance WHERE UId = ?MyUId", schema
        )
        assert view_covered_by(truth_v1, policy)

    def test_v2_recovered(self, extracted):
        policy, _, schema = extracted
        truth_v2 = View(
            "T2",
            "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId"
            " WHERE a.UId = ?MyUId",
            schema,
        )
        assert view_covered_by(truth_v2, policy)

    def test_no_over_generalization(self, extracted):
        # The extracted policy must NOT reveal arbitrary events.
        policy, _, schema = extracted
        too_broad = View("B", "SELECT Title FROM Events", schema)
        assert not view_covered_by(too_broad, policy)

    def test_both_paths_explored(self, extracted):
        _, report, _ = extracted
        assert report.paths_explored["show_event"] == 2


@pytest.mark.parametrize("module", [calendar_app, hospital, employees, social])
def test_full_app_extraction_exact(module):
    """E4 headline: extracted policy ≡ ground truth on every workload."""
    app = module.make_app()
    schema = app.make_database(8, 1).schema
    extractor = SymbolicExtractor(schema)
    extracted, _ = extractor.extract(list(app.handlers.values()))
    comparison = compare_policies(extracted, app.ground_truth_policy())
    assert comparison.exact, f"{app.name}: {comparison.describe()}"


class TestGuards:
    def test_empty_branch_query_not_guarded_by_emptiness(self, calendar_schema):
        """Queries issued on the IsEmpty branch drop the negative guard."""
        from repro.extract.handlers import (
            Assign,
            Handler,
            If,
            IsEmpty,
            ParamRef,
            Query,
            Return,
            SessionRef,
        )

        handler = Handler(
            name="fallback",
            params=("eid",),
            body=(
                Assign(
                    "check",
                    Query(
                        "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
                        (SessionRef("user_id"), ParamRef("eid")),
                    ),
                ),
                If(
                    IsEmpty("check"),
                    # Fallback on the *empty* branch: still issues a query.
                    then=(Return(Query("SELECT UId, Name FROM Users WHERE UId = ?",
                                       (SessionRef("user_id"),))),),
                    orelse=(Return(Query("SELECT * FROM Events WHERE EId = ?",
                                         (ParamRef("eid"),))),),
                ),
            ),
        )
        extractor = SymbolicExtractor(calendar_schema)
        policy, report = extractor.extract([handler])
        # The fallback view must exist and not be narrowed by a guard.
        from repro.policy.compare import view_covered_by

        self_view = View(
            "S", "SELECT UId, Name FROM Users WHERE UId = ?MyUId", calendar_schema
        )
        assert view_covered_by(self_view, policy)

    def test_session_param_mapping_configurable(self, calendar_schema):
        from repro.extract.handlers import Handler, Query, Return, SessionRef

        handler = Handler(
            name="h",
            params=(),
            body=(
                Return(
                    Query(
                        "SELECT EId FROM Attendance WHERE UId = ?",
                        (SessionRef("staff_id"),),
                    )
                ),
            ),
        )
        extractor = SymbolicExtractor(
            calendar_schema, session_params={"staff_id": "StaffId"}
        )
        policy, _ = extractor.extract([handler])
        assert policy.views[0].param_names == ["StaffId"]


class TestDedup:
    def test_equivalent_views_merged(self, calendar_schema):
        from repro.extract.handlers import Handler, Query, Return, SessionRef

        h1 = Handler(
            "a",
            (),
            (Return(Query("SELECT EId FROM Attendance WHERE UId = ?",
                          (SessionRef("user_id"),))),),
        )
        h2 = Handler(
            "b",
            (),
            (Return(Query("SELECT a.EId FROM Attendance a WHERE a.UId = ?",
                          (SessionRef("user_id"),))),),
        )
        extractor = SymbolicExtractor(calendar_schema)
        policy, _ = extractor.extract([h1, h2])
        assert len(policy) == 1

    def test_projection_of_other_view_dropped(self, calendar_schema):
        from repro.extract.handlers import Handler, Query, Return, SessionRef

        full = Handler(
            "full",
            (),
            (Return(Query("SELECT UId, EId FROM Attendance WHERE UId = ?",
                          (SessionRef("user_id"),))),),
        )
        narrow = Handler(
            "narrow",
            (),
            (Return(Query("SELECT EId FROM Attendance WHERE UId = ?",
                          (SessionRef("user_id"),))),),
        )
        extractor = SymbolicExtractor(calendar_schema)
        policy, _ = extractor.extract([full, narrow])
        assert len(policy) == 1
