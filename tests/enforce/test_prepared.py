"""Prepared plans: the hoisted hit path must be decision-identical.

Two layers under test. :mod:`repro.sqlir.prepared` itself — sentinel
probing must reproduce ``skeletonize(bind(...))`` exactly for static
plans and *refuse* (fall back) whenever it could not — and the
:class:`EnforcementProxy` prepared API, which must agree with ``sql()``
on every decision, row, and trace fact.
"""

from __future__ import annotations

import pytest

from repro.enforce.decision import PolicyViolation
from repro.enforce.proxy import EnforcementProxy, ProxyConfig, Session
from repro.sqlir.parser import parse_sql
from repro.sqlir.prepared import prepare_plan
from repro.sqlir.skeleton import skeletonize
from repro.workloads import calendar_app


def plan_for(sql: str):
    return prepare_plan(parse_sql(sql), sql)


class TestPlanConstruction:
    def test_static_plan_reproduces_classic_skeleton(self):
        sql = "SELECT EId FROM Attendance WHERE UId = ? AND EId = ?"
        plan = plan_for(sql)
        assert plan.is_select and plan.static
        for args in ([1, 2], [7, 7], ["a", "b"]):
            fast = plan.skeleton_for(args)
            classic = skeletonize(plan.bind(args))
            assert fast == classic

    def test_constants_and_args_mix_in_slot_order(self):
        sql = "SELECT EId FROM Attendance WHERE UId = 42 AND EId = ?"
        plan = plan_for(sql)
        fast = plan.skeleton_for([9])
        classic = skeletonize(plan.bind([9]))
        assert fast == classic
        assert 42 in fast.values and 9 in fast.values

    def test_named_parameters(self):
        sql = "SELECT EId FROM Attendance WHERE UId = ?me"
        plan = plan_for(sql)
        assert plan.named_params == ("me",)
        fast = plan.skeleton_for((), {"me": 3})
        classic = skeletonize(plan.bind((), {"me": 3}))
        assert fast == classic

    def test_write_plan_is_parse_skip_only(self):
        plan = plan_for("UPDATE Events SET Title = 'x' WHERE EId = ?")
        assert plan.is_select is False
        assert plan.static is False
        assert plan.skeleton_for([1]) is None

    def test_no_parameter_statement(self):
        sql = "SELECT EId FROM Attendance WHERE UId = 1"
        plan = plan_for(sql)
        assert plan.static
        assert plan.skeleton_for() == skeletonize(plan.bind())


class TestFallbacks:
    def test_bool_argument_forces_classic_path(self):
        plan = plan_for("SELECT EId FROM Attendance WHERE UId = ?")
        assert plan.skeleton_for([True]) is None
        assert plan.skeleton_for([False]) is None

    def test_none_argument_forces_classic_path(self):
        plan = plan_for("SELECT EId FROM Attendance WHERE UId = ?")
        assert plan.skeleton_for([None]) is None

    def test_missing_binding_forces_classic_path(self):
        plan = plan_for("SELECT EId FROM Attendance WHERE UId = ? AND EId = ?")
        assert plan.skeleton_for([1]) is None  # one arg short
        named_plan = plan_for("SELECT EId FROM Attendance WHERE UId = ?me")
        assert named_plan.skeleton_for() is None

    def test_parameter_inside_exists_is_non_static(self):
        """skeletonize leaves EXISTS subqueries intact, so a parameter in
        there would change the skeleton per execution: the sentinel
        survives inline and the plan must refuse the fast path."""
        sql = (
            "SELECT EId FROM Events WHERE EXISTS "
            "(SELECT 1 FROM Attendance WHERE Attendance.UId = ?)"
        )
        plan = plan_for(sql)
        assert plan.static is False
        assert plan.skeleton_for([1]) is None
        # The classic path still works off the same plan object.
        bound = plan.bind([1])
        assert skeletonize(bound) is not None


def make_proxy(user_id: int = 1, **config) -> EnforcementProxy:
    db = calendar_app.make_database(size=8, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.make_app().ground_truth_policy()
    return EnforcementProxy(
        db, policy, Session.for_user(user_id), ProxyConfig(**config)
    )


class TestProxyPreparedPath:
    def test_rows_match_the_classic_path(self):
        proxy = make_proxy()
        sql = "SELECT EId FROM Attendance WHERE UId = ?"
        plan = proxy.prepare(sql)
        classic = proxy.sql(sql, [1])
        prepared = proxy.execute_prepared(plan, [1])
        assert sorted(prepared.rows) == sorted(classic.rows)

    def test_blocked_statements_stay_blocked(self):
        proxy = make_proxy()
        plan = proxy.prepare("SELECT * FROM Events WHERE EId = ?")
        with pytest.raises(PolicyViolation):
            proxy.execute_prepared(plan, [999])

    def test_prepared_probe_certifies_trace_facts(self):
        """Example 2.1 with the probe executed via the prepared path."""
        proxy = make_proxy()
        probe = proxy.prepare("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?")
        assert len(proxy.execute_prepared(probe, [1, 2])) == 1
        follow = proxy.sql("SELECT * FROM Events WHERE EId = 2")
        assert not follow.is_empty()

    def test_prepared_write_passes_through(self):
        proxy = make_proxy()
        plan = proxy.prepare("UPDATE Events SET Title = Title")
        count = proxy.execute_prepared(plan)
        assert isinstance(count, int) and count > 0

    def test_decision_agreement_across_a_session(self):
        """Replay the same mixed workload through two fresh proxies, one
        classic and one prepared; every (sql, args) pair must agree on
        allow/block and rows."""
        statements = [
            ("SELECT EId FROM Attendance WHERE UId = ?", [1]),
            ("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [1, 2]),
            ("SELECT * FROM Events WHERE EId = ?", [2]),
            ("SELECT * FROM Events WHERE EId = ?", [999]),
            ("SELECT UId, EId FROM Attendance WHERE UId = ?", [1]),
        ]
        classic_proxy = make_proxy()
        prepared_proxy = make_proxy()
        plans = {sql: prepared_proxy.prepare(sql) for sql, _ in statements}
        for sql, args in statements:
            try:
                classic = ("ok", sorted(classic_proxy.sql(sql, args).rows))
            except PolicyViolation:
                classic = ("blocked", None)
            try:
                prepared = (
                    "ok",
                    sorted(prepared_proxy.execute_prepared(plans[sql], args).rows),
                )
            except PolicyViolation:
                prepared = ("blocked", None)
            assert prepared == classic, f"disagreement on {sql} {args}"

    def test_fast_path_populates_the_decision_cache(self):
        from repro.enforce.cache import DecisionCache

        policy = calendar_app.make_app().ground_truth_policy()
        cache = DecisionCache(policy)
        db = calendar_app.make_database(size=8, seed=3)
        proxy = EnforcementProxy(
            db, policy, Session.for_user(1), ProxyConfig(cache=cache)
        )
        plan = proxy.prepare("SELECT EId FROM Attendance WHERE UId = ?")
        proxy.execute_prepared(plan, [1])
        assert cache.size == 1
        proxy.execute_prepared(plan, [1])
        assert proxy.stats.cache_hits == 1
