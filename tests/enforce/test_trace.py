"""Trace and fact-extraction tests."""

from repro.enforce.trace import Trace, is_labeled_null
from repro.engine.executor import Result
from repro.relalg.cq import Const
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select


def tr1(sql, schema):
    return translate_select(parse_select(sql), schema).disjuncts[0]


class TestFactExtraction:
    def test_ground_fact_from_constant_query(self, calendar_schema):
        # Q1 of Example 2.1: all arguments pinned by comparisons.
        trace = Trace()
        query = tr1(
            "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2", calendar_schema
        )
        trace.record("q1", query, Result(columns=["c"], rows=[(1,)]))
        assert trace.facts == (
            type(trace.facts[0])("Attendance", (Const(1), Const(2))),
        )

    def test_head_binding_creates_fact_per_row(self, calendar_schema):
        trace = Trace()
        query = tr1("SELECT EId FROM Attendance WHERE UId = 1", calendar_schema)
        trace.record("q", query, Result(columns=["EId"], rows=[(5,), (6,)]))
        values = sorted(fact.args[1].value for fact in trace.facts)
        assert values == [5, 6]
        assert all(fact.args[0] == Const(1) for fact in trace.facts)

    def test_undetermined_column_becomes_labeled_null(self, calendar_schema):
        trace = Trace()
        query = tr1("SELECT Title FROM Events WHERE EId = 3", calendar_schema)
        trace.record("q", query, Result(columns=["Title"], rows=[("standup",)]))
        fact = trace.facts[0]
        assert fact.rel == "Events"
        assert fact.args[0] == Const(3)
        assert fact.args[1] == Const("standup")
        assert is_labeled_null(fact.args[2])  # Time
        assert is_labeled_null(fact.args[3])  # Loc

    def test_joined_variables_share_null(self, calendar_schema):
        trace = Trace()
        query = tr1(
            "SELECT a.UId FROM Events e JOIN Attendance a ON e.EId = a.EId"
            " WHERE a.UId = 1",
            calendar_schema,
        )
        trace.record("q", query, Result(columns=["UId"], rows=[(1,)]))
        events_fact = next(f for f in trace.facts if f.rel == "Events")
        attendance_fact = next(f for f in trace.facts if f.rel == "Attendance")
        # The join column carries the same labeled null in both facts.
        assert events_fact.args[0] == attendance_fact.args[1]

    def test_empty_result_produces_no_facts(self, calendar_schema):
        trace = Trace()
        query = tr1("SELECT EId FROM Attendance WHERE UId = 1", calendar_schema)
        trace.record("q", query, Result(columns=["EId"], rows=[]))
        assert trace.facts == ()

    def test_untranslatable_query_recorded_without_facts(self):
        trace = Trace()
        entry = trace.record("q", None, Result(columns=["c"], rows=[(1,)]))
        assert entry.facts == ()

    def test_fact_cap_respected(self, calendar_schema):
        trace = Trace(max_facts=3)
        query = tr1("SELECT EId FROM Attendance WHERE UId = 1", calendar_schema)
        rows = [(i,) for i in range(10)]
        trace.record("q", query, Result(columns=["EId"], rows=rows))
        assert len(trace.facts) == 3

    def test_relevant_facts_filters_by_relation(self, calendar_schema):
        trace = Trace()
        query = tr1("SELECT EId FROM Attendance WHERE UId = 1", calendar_schema)
        trace.record("q", query, Result(columns=["EId"], rows=[(5,)]))
        assert trace.relevant_facts({"Attendance"})
        assert not trace.relevant_facts({"Events"})

    def test_duplicate_ground_facts_deduped(self, calendar_schema):
        trace = Trace()
        query = tr1(
            "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2", calendar_schema
        )
        trace.record("q", query, Result(columns=["c"], rows=[(1,)]))
        trace.record("q", query, Result(columns=["c"], rows=[(1,)]))
        assert len(trace.facts) == 1
