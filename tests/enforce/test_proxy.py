"""Enforcement-proxy tests: the application-facing behavior."""

import pytest

from repro.enforce import (
    DecisionCache,
    EnforcementProxy,
    PolicyViolation,
    ProxyConfig,
    Session,
)


@pytest.fixture
def proxy(calendar_db, calendar_policy):
    return EnforcementProxy(calendar_db, calendar_policy, Session.for_user(1))


def attending_pair(calendar_db):
    row = calendar_db.query("SELECT UId, EId FROM Attendance").first()
    return row


class TestFlow:
    def test_example_2_1_flow(self, calendar_db, calendar_policy):
        uid, eid = attending_pair(calendar_db)
        proxy = EnforcementProxy(calendar_db, calendar_policy, Session.for_user(uid))
        check = proxy.query(
            "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid]
        )
        assert not check.is_empty()
        detail = proxy.query("SELECT * FROM Events WHERE EId = ?", [eid])
        assert len(detail) == 1
        assert proxy.stats.allowed == 2
        assert proxy.stats.blocked == 0

    def test_block_raises_with_decision(self, proxy):
        with pytest.raises(PolicyViolation) as err:
            proxy.query("SELECT * FROM Events")
        assert not err.value.decision.allowed
        assert proxy.stats.blocked == 1

    def test_never_modifies_queries(self, calendar_db, calendar_policy):
        # First trait of §2.2: executed as-is — results match a direct run.
        uid, eid = attending_pair(calendar_db)
        proxy = EnforcementProxy(calendar_db, calendar_policy, Session.for_user(uid))
        direct = calendar_db.query("SELECT EId FROM Attendance WHERE UId = ?", [uid])
        proxied = proxy.query("SELECT EId FROM Attendance WHERE UId = ?", [uid])
        assert proxied.rows == direct.rows

    def test_writes_pass_through(self, proxy, calendar_db):
        before = calendar_db.row_count("Events")
        proxy.sql("INSERT INTO Events VALUES (999, 'new', 900, 'room1')")
        assert calendar_db.row_count("Events") == before + 1

    def test_trace_accumulates(self, calendar_db, calendar_policy):
        uid, eid = attending_pair(calendar_db)
        proxy = EnforcementProxy(calendar_db, calendar_policy, Session.for_user(uid))
        proxy.query("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid])
        assert len(proxy.trace) == 1
        assert proxy.trace.facts

    def test_session_isolation(self, calendar_db, calendar_policy):
        uid, eid = attending_pair(calendar_db)
        mine = EnforcementProxy(calendar_db, calendar_policy, Session.for_user(uid))
        other_uid = uid + 1
        other = EnforcementProxy(
            calendar_db, calendar_policy, Session.for_user(other_uid)
        )
        mine.query("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid])
        # The other session has no history; the detail fetch must block
        # unless that user also attends the event.
        attends = not calendar_db.query(
            "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [other_uid, eid]
        ).is_empty()
        if not attends:
            with pytest.raises(PolicyViolation):
                other.query("SELECT * FROM Events WHERE EId = ?", [eid])


class TestCacheIntegration:
    def test_cache_hit_on_repeat(self, calendar_db, calendar_policy):
        uid, eid = attending_pair(calendar_db)
        cache = DecisionCache(calendar_policy)
        proxy = EnforcementProxy(
            calendar_db,
            calendar_policy,
            Session.for_user(uid),
            ProxyConfig(cache=cache),
        )
        proxy.query("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid])
        proxy.query("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid])
        assert proxy.stats.cache_hits == 1

    def test_cache_shared_across_sessions(self, calendar_db, calendar_policy):
        cache = DecisionCache(calendar_policy)
        pairs = calendar_db.query("SELECT UId, EId FROM Attendance").rows[:2]
        for uid, eid in pairs:
            proxy = EnforcementProxy(
                calendar_db,
                calendar_policy,
                Session.for_user(uid),
                ProxyConfig(cache=cache),
            )
            proxy.query(
                "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [uid, eid]
            )
        assert cache.hits >= 1
