"""Baseline-connection tests: direct and RLS query modification."""

import pytest

from repro.enforce.baselines import DirectConnection, RowLevelSecurityProxy
from repro.util.errors import PolicyError


class TestDirect:
    def test_direct_passthrough(self, calendar_db):
        direct = DirectConnection(calendar_db)
        assert direct.query("SELECT COUNT(*) FROM Events").scalar() == \
            calendar_db.query("SELECT COUNT(*) FROM Events").scalar()


class TestRls:
    def test_row_predicate_applied(self, calendar_db):
        rls = RowLevelSecurityProxy(
            calendar_db, {"Attendance": "{T}.UId = ?MyUId"}, {"MyUId": 1}
        )
        rows = rls.query("SELECT UId, EId FROM Attendance").rows
        assert rows
        assert all(uid == 1 for uid, _ in rows)

    def test_unrestricted_table_unchanged(self, calendar_db):
        rls = RowLevelSecurityProxy(
            calendar_db, {"Attendance": "{T}.UId = ?MyUId"}, {"MyUId": 1}
        )
        assert len(rls.query("SELECT * FROM Events")) == calendar_db.row_count("Events")

    def test_predicate_composes_with_query_where(self, calendar_db):
        rls = RowLevelSecurityProxy(
            calendar_db, {"Attendance": "{T}.UId = ?MyUId"}, {"MyUId": 1}
        )
        my_events = {r[0] for r in calendar_db.query(
            "SELECT EId FROM Attendance WHERE UId = 1").rows}
        some = next(iter(my_events))
        rows = rls.query("SELECT EId FROM Attendance WHERE EId = ?", [some]).rows
        assert rows == [(some,)]

    def test_truman_silent_filtering(self, calendar_db):
        # The defining trait the paper contrasts with Blockaid: the query
        # is modified, not blocked — asking for user 9's rows as user 1
        # silently returns nothing.
        rls = RowLevelSecurityProxy(
            calendar_db, {"Attendance": "{T}.UId = ?MyUId"}, {"MyUId": 1}
        )
        assert rls.query("SELECT EId FROM Attendance WHERE UId = 9").is_empty()

    def test_alias_substitution_in_joins(self, calendar_db):
        rls = RowLevelSecurityProxy(
            calendar_db, {"Attendance": "{T}.UId = ?MyUId"}, {"MyUId": 1}
        )
        rows = rls.query(
            "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId"
        ).rows
        expected = calendar_db.query(
            "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId"
            " WHERE a.UId = 1"
        ).rows
        assert sorted(rows) == sorted(expected)

    def test_unknown_table_predicate_rejected(self, calendar_db):
        with pytest.raises(PolicyError):
            RowLevelSecurityProxy(calendar_db, {"Nope": "{T}.x = 1"}, {})

    def test_writes_pass_through(self, calendar_db):
        rls = RowLevelSecurityProxy(
            calendar_db, {"Attendance": "{T}.UId = ?MyUId"}, {"MyUId": 1}
        )
        before = calendar_db.row_count("Events")
        rls.sql("INSERT INTO Events VALUES (777, 'x', 1, 'y')")
        assert calendar_db.row_count("Events") == before + 1
