"""The compiled decision fast path must be decision-invisible.

A checker handed a :class:`CompiledPolicy` answers from per-skeleton
decision templates whenever it can; these tests pin the contract that
doing so never changes an answer. Block templates are the delicate part
— a Block derived under one trace is only sound to replay while the
requester's trace still has no facts in the decision's relevant
relations — so Example 2.1's dynamics (blocked before attending, allowed
after) get a dedicated regression, and a hypothesis property drives
random SPJ statements and traces through a compiled checker and a
template-free twin demanding identical allow/block and rewritings.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.enforce.checker import ComplianceChecker
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.relalg.compile import compile_policy
from repro.relalg.translate import translate_select
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app


def bound(sql, args=()):
    return bind_parameters(parse_select(sql), list(args))


@pytest.fixture
def compiled_checker(calendar_schema, calendar_policy):
    return ComplianceChecker(
        calendar_schema,
        calendar_policy,
        compiled=compile_policy(calendar_schema, calendar_policy),
    )


@pytest.fixture
def plain_checker(calendar_schema, calendar_policy):
    return ComplianceChecker(calendar_schema, calendar_policy)


def attendance_trace(schema, uid, eid, rows=((1,),)):
    trace = Trace()
    q = translate_select(
        bound(f"SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = {eid}"),
        schema,
    ).disjuncts[0]
    trace.record("q", q, Result(columns=["c"], rows=list(rows)))
    return trace


class TestAllowFastPath:
    def test_second_check_is_a_template_hit_with_same_answer(self, compiled_checker):
        stmt = bound("SELECT EId FROM Attendance WHERE UId = 1")
        first = compiled_checker.check(stmt, {"MyUId": 1})
        assert compiled_checker.skeletons.compiled_hits == 0
        second = compiled_checker.check(stmt, {"MyUId": 1})
        assert compiled_checker.skeletons.compiled_hits == 1
        assert first.allowed and second.allowed
        assert not second.from_cache  # checker-shaped, not proxy-cache-shaped

    def test_template_generalizes_across_users(self, compiled_checker):
        compiled_checker.check(
            bound("SELECT EId FROM Attendance WHERE UId = 1"), {"MyUId": 1}
        )
        decision = compiled_checker.check(
            bound("SELECT EId FROM Attendance WHERE UId = 7"), {"MyUId": 7}
        )
        assert decision.allowed
        assert compiled_checker.skeletons.compiled_hits == 1

    def test_template_does_not_leak_across_mismatched_bindings(self, compiled_checker):
        compiled_checker.check(
            bound("SELECT EId FROM Attendance WHERE UId = 1"), {"MyUId": 1}
        )
        # User 1's template must not allow user 9 reading user 1's rows.
        decision = compiled_checker.check(
            bound("SELECT EId FROM Attendance WHERE UId = 1"), {"MyUId": 9}
        )
        assert not decision.allowed

    def test_fact_backed_allow_reconstructs_facts_used(
        self, compiled_checker, calendar_schema
    ):
        trace = attendance_trace(calendar_schema, 1, 2)
        stmt = bound("SELECT * FROM Events WHERE EId = 2")
        first = compiled_checker.check(stmt, {"MyUId": 1}, trace)
        assert first.allowed and first.facts_used
        second = compiled_checker.check(stmt, {"MyUId": 1}, trace)
        assert compiled_checker.skeletons.compiled_hits == 1
        assert second.allowed
        # The hit names the trace facts that satisfied the pattern, so
        # audit/metrics consumers see a checker-shaped decision.
        assert second.facts_used
        assert {fact.rel for fact in second.facts_used} == {"Attendance"}


class TestBlockTemplates:
    """Example 2.1's dynamics: Blocks replay only while their guard holds."""

    def test_block_is_templated_and_replayed_without_facts(self, compiled_checker):
        stmt = bound("SELECT * FROM Events WHERE EId = 2")
        first = compiled_checker.check(stmt, {"MyUId": 1})
        assert not first.allowed
        assert compiled_checker.skeletons.blocks_stored == 1
        second = compiled_checker.check(stmt, {"MyUId": 1}, Trace())
        assert not second.allowed
        assert compiled_checker.skeletons.compiled_hits == 1

    def test_block_template_yields_once_attendance_lands(
        self, compiled_checker, calendar_schema
    ):
        stmt = bound("SELECT * FROM Events WHERE EId = 2")
        assert not compiled_checker.check(stmt, {"MyUId": 1}).allowed
        # The attendance fact breaks the guard: the template must NOT
        # replay the stale Block; the full check now allows.
        trace = attendance_trace(calendar_schema, 1, 2)
        decision = compiled_checker.check(stmt, {"MyUId": 1}, trace)
        assert decision.allowed
        assert compiled_checker.skeletons.compiled_hits == 0

    def test_empty_result_facts_do_not_break_the_guard(
        self, compiled_checker, calendar_schema
    ):
        stmt = bound("SELECT * FROM Events WHERE EId = 2")
        assert not compiled_checker.check(stmt, {"MyUId": 1}).allowed
        hits_before = compiled_checker.skeletons.compiled_hits
        trace = attendance_trace(calendar_schema, 1, 2, rows=())
        decision = compiled_checker.check(stmt, {"MyUId": 1}, trace)
        assert not decision.allowed
        # An empty q1 certifies nothing; whether the Block came from the
        # template or a fresh check it must stand.
        assert (
            compiled_checker.skeletons.compiled_hits >= hits_before
        )

    def test_fact_derived_block_is_never_templated(
        self, compiled_checker, calendar_schema
    ):
        # A check that *considered* facts cannot produce a replayable
        # Block: those facts may not hold for the next requester.
        trace = attendance_trace(calendar_schema, 1, 2)
        stmt = bound("SELECT * FROM Events WHERE EId = 3")
        decision = compiled_checker.check(stmt, {"MyUId": 1}, trace)
        assert not decision.allowed
        if decision.facts_considered:
            assert compiled_checker.skeletons.blocks_stored == 0

    def test_fragment_block_replays_unconditionally(self, compiled_checker):
        stmt = bound("SELECT COUNT(*) FROM Events")
        first = compiled_checker.check(stmt, {"MyUId": 1})
        assert not first.allowed and "fragment" in first.reason
        second = compiled_checker.check(
            stmt, {"MyUId": 1}, Trace()
        )
        assert not second.allowed
        assert compiled_checker.skeletons.compiled_hits == 1


class TestAllowCompiledFlag:
    def test_allow_compiled_false_bypasses_and_does_not_learn(
        self, compiled_checker
    ):
        stmt = bound("SELECT EId FROM Attendance WHERE UId = 1")
        decision = compiled_checker.check(stmt, {"MyUId": 1}, allow_compiled=False)
        assert decision.allowed
        assert compiled_checker.skeletons.size == 0
        assert compiled_checker.skeletons.compiled_hits == 0
        assert compiled_checker.skeletons.compiled_misses == 0

    def test_allow_compiled_false_ignores_existing_templates(self, compiled_checker):
        stmt = bound("SELECT EId FROM Attendance WHERE UId = 1")
        compiled_checker.check(stmt, {"MyUId": 1})
        decision = compiled_checker.check(stmt, {"MyUId": 1}, allow_compiled=False)
        assert decision.allowed
        assert compiled_checker.skeletons.compiled_hits == 0


# --------------------------------------------------------------------------
# Hypothesis: compiled and template-free checkers are indistinguishable
# --------------------------------------------------------------------------

SHAPES = [
    ("SELECT EId FROM Attendance WHERE UId = ?", 1),
    ("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", 2),
    ("SELECT * FROM Events WHERE EId = ?", 1),
    ("SELECT Title, Loc FROM Events WHERE EId = ?", 1),
    ("SELECT Name FROM Users WHERE UId = ?", 1),
    ("SELECT EId FROM Attendance WHERE UId = ? AND EId IN (?, ?)", 3),
    ("SELECT COUNT(*) FROM Events", 0),
]

values = st.sampled_from([1, 2, 3, 4])


@st.composite
def scenarios(draw):
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        shape, holes = SHAPES[draw(st.integers(0, len(SHAPES) - 1))]
        args = [draw(values) for _ in range(holes)]
        user = draw(values)
        # Optional trace: user has witnessed attending (uid, eid).
        witnessed = draw(
            st.lists(st.tuples(values, values), max_size=2)
        )
        steps.append((shape, args, user, witnessed))
    return steps


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(steps=scenarios())
def test_compiled_checker_agrees_with_template_free_checker(steps):
    schema = calendar_app.make_schema()
    policy = calendar_app.ground_truth_policy()
    with_templates = ComplianceChecker(
        schema, policy, compiled=compile_policy(schema, policy)
    )
    template_free = ComplianceChecker(schema, policy)
    for shape, args, user, witnessed in steps:
        stmt = bound(shape, args)
        trace = Trace()
        for uid, eid in witnessed:
            q = translate_select(
                bound(f"SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = {eid}"),
                schema,
            ).disjuncts[0]
            trace.record("w", q, Result(columns=["c"], rows=[(1,)]))
        hits_before = with_templates.skeletons.compiled_hits
        got = with_templates.check(stmt, {"MyUId": user}, trace)
        want = template_free.check(stmt, {"MyUId": user}, trace)
        assert got.allowed == want.allowed, (shape, args, user, witnessed)
        if with_templates.skeletons.compiled_hits == hits_before:
            # Full-path decisions must match to the rewriting; template
            # hits replay the answer without re-deriving one.
            assert got.rewritings == want.rewritings
