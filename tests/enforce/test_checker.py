"""Compliance-checker tests, centered on Example 2.1."""

import pytest

from repro.enforce.checker import ComplianceChecker
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.relalg.translate import translate_select
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select


@pytest.fixture
def checker(calendar_schema, calendar_policy):
    return ComplianceChecker(calendar_schema, calendar_policy)


def bound(sql, args=()):
    return bind_parameters(parse_select(sql), list(args))


class TestExample21:
    """The paper's Example 2.1, step by step."""

    def test_q1_allowed(self, checker):
        decision = checker.check(
            bound("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"),
            {"MyUId": 1},
        )
        assert decision.allowed
        assert decision.rewritings

    def test_q2_blocked_without_history(self, checker):
        decision = checker.check(
            bound("SELECT * FROM Events WHERE EId = 2"), {"MyUId": 1}
        )
        assert not decision.allowed

    def test_q2_allowed_with_history(self, checker, calendar_schema):
        trace = Trace()
        q1 = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"),
            calendar_schema,
        ).disjuncts[0]
        trace.record("q1", q1, Result(columns=["c"], rows=[(1,)]))
        decision = checker.check(
            bound("SELECT * FROM Events WHERE EId = 2"), {"MyUId": 1}, trace
        )
        assert decision.allowed
        assert decision.facts_considered >= 1

    def test_q2_still_blocked_when_q1_was_empty(self, checker, calendar_schema):
        trace = Trace()
        q1 = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"),
            calendar_schema,
        ).disjuncts[0]
        trace.record("q1", q1, Result(columns=["c"], rows=[]))
        decision = checker.check(
            bound("SELECT * FROM Events WHERE EId = 2"), {"MyUId": 1}, trace
        )
        assert not decision.allowed

    def test_history_disabled_blocks_q2(self, calendar_schema, calendar_policy):
        checker = ComplianceChecker(
            calendar_schema, calendar_policy, history_enabled=False
        )
        trace = Trace()
        q1 = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"),
            calendar_schema,
        ).disjuncts[0]
        trace.record("q1", q1, Result(columns=["c"], rows=[(1,)]))
        decision = checker.check(
            bound("SELECT * FROM Events WHERE EId = 2"), {"MyUId": 1}, trace
        )
        assert not decision.allowed


class TestSoundness:
    def test_other_users_attendance_blocked(self, checker):
        decision = checker.check(
            bound("SELECT EId FROM Attendance WHERE UId = 9"), {"MyUId": 1}
        )
        assert not decision.allowed

    def test_full_events_blocked(self, checker):
        decision = checker.check(bound("SELECT * FROM Events"), {"MyUId": 1})
        assert not decision.allowed

    def test_facts_of_other_users_do_not_help(self, checker, calendar_schema):
        # A fact about user 1's attendance must not justify user 9's view.
        trace = Trace()
        q1 = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"),
            calendar_schema,
        ).disjuncts[0]
        trace.record("q1", q1, Result(columns=["c"], rows=[(1,)]))
        decision = checker.check(
            bound("SELECT * FROM Events WHERE EId = 3"), {"MyUId": 1}, trace
        )
        assert not decision.allowed

    def test_untranslatable_query_blocked(self, checker):
        decision = checker.check(bound("SELECT COUNT(*) FROM Events"), {"MyUId": 1})
        assert not decision.allowed
        assert "fragment" in decision.reason


class TestUnions:
    def test_in_list_query_allowed_when_all_disjuncts_covered(self, checker):
        decision = checker.check(
            bound("SELECT EId FROM Attendance WHERE UId = 1 AND EId IN (2, 3)"),
            {"MyUId": 1},
        )
        assert decision.allowed
        assert len(decision.rewritings) == 2

    def test_union_blocked_if_any_disjunct_leaks(self, checker):
        decision = checker.check(
            bound("SELECT EId FROM Attendance WHERE UId = 1 OR UId = 9"),
            {"MyUId": 1},
        )
        assert not decision.allowed


class TestDecisionMetadata:
    def test_reason_and_duration_populated(self, checker):
        decision = checker.check(
            bound("SELECT EId FROM Attendance WHERE UId = 1"), {"MyUId": 1}
        )
        assert decision.allowed
        assert decision.duration_s >= 0
        assert "computable" in decision.reason

    def test_describe_mentions_verdict(self, checker):
        decision = checker.check(bound("SELECT * FROM Events"), {"MyUId": 1})
        assert decision.describe().startswith("BLOCK")
