"""Legacy EnforcementProxy kwargs: deprecated but still honored.

The individual ``history_enabled`` / ``cache`` / ``record_decisions``
constructor keywords predate :class:`ProxyConfig`. They must (a) emit a
``DeprecationWarning`` naming the offending keyword and (b) override the
matching field of whatever ``config`` was passed, so old call sites keep
their exact behavior until they migrate.
"""

from __future__ import annotations

import warnings

import pytest

from repro.enforce import EnforcementProxy, ProxyConfig, Session
from repro.enforce.cache import DecisionCache


@pytest.fixture
def make_proxy(calendar_db, calendar_policy):
    def factory(config=None, **kwargs):
        return EnforcementProxy(
            calendar_db, calendar_policy, Session.for_user(1), config, **kwargs
        )

    return factory


class TestLegacyKwargsWarn:
    def test_history_enabled_warns_and_overrides(self, make_proxy):
        with pytest.warns(DeprecationWarning, match="history_enabled"):
            proxy = make_proxy(ProxyConfig(history_enabled=True), history_enabled=False)
        assert proxy.config.history_enabled is False
        assert proxy.checker.history_enabled is False

    def test_cache_warns_and_overrides(self, make_proxy, calendar_policy):
        cache = DecisionCache(calendar_policy)
        with pytest.warns(DeprecationWarning, match="cache"):
            proxy = make_proxy(ProxyConfig(cache=None), cache=cache)
        assert proxy.config.cache is cache
        assert proxy.cache is cache  # deprecated accessor agrees

    def test_record_decisions_warns_and_overrides(self, make_proxy):
        with pytest.warns(DeprecationWarning, match="record_decisions"):
            proxy = make_proxy(ProxyConfig(record_decisions=False), record_decisions=True)
        assert proxy.config.record_decisions is True

    def test_multiple_kwargs_warn_once_naming_all(self, make_proxy):
        with pytest.warns(DeprecationWarning) as captured:
            make_proxy(history_enabled=False, record_decisions=True)
        messages = [str(w.message) for w in captured]
        assert len(messages) == 1
        assert "history_enabled" in messages[0]
        assert "record_decisions" in messages[0]

    def test_other_config_fields_survive_an_override(self, make_proxy):
        with pytest.warns(DeprecationWarning):
            proxy = make_proxy(
                ProxyConfig(history_enabled=False, decision_log_cap=7),
                record_decisions=True,
            )
        assert proxy.config.history_enabled is False
        assert proxy.config.decision_log_cap == 7
        assert proxy.config.record_decisions is True


class TestModernPathIsQuiet:
    def test_config_only_emits_no_warning(self, make_proxy):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            proxy = make_proxy(ProxyConfig(history_enabled=False, record_decisions=True))
        assert proxy.config.record_decisions is True

    def test_defaults_emit_no_warning(self, make_proxy):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_proxy()
