"""Legacy EnforcementProxy kwargs: the deprecation cycle is complete.

The individual ``history_enabled`` / ``cache`` / ``record_decisions``
constructor keywords predate :class:`ProxyConfig`. PR 1 deprecated them
(warn + honor); this cycle ends it: they are a hard ``TypeError`` whose
message names the offending keyword(s) and shows the ``ProxyConfig``
migration, so a stale call site fails loudly with instructions rather
than silently changing behavior.
"""

from __future__ import annotations

import warnings

import pytest

from repro.enforce import EnforcementProxy, ProxyConfig, Session
from repro.enforce.cache import DecisionCache


@pytest.fixture
def make_proxy(calendar_db, calendar_policy):
    def factory(config=None, **kwargs):
        return EnforcementProxy(
            calendar_db, calendar_policy, Session.for_user(1), config, **kwargs
        )

    return factory


class TestLegacyKwargsAreHardErrors:
    def test_history_enabled_raises_with_migration_hint(self, make_proxy):
        with pytest.raises(TypeError, match=r"history_enabled"):
            make_proxy(history_enabled=False)
        with pytest.raises(TypeError, match=r"ProxyConfig\(history_enabled=\.\.\.\)"):
            make_proxy(history_enabled=False)

    def test_cache_raises_with_migration_hint(self, make_proxy, calendar_policy):
        cache = DecisionCache(calendar_policy)
        with pytest.raises(TypeError, match=r"ProxyConfig\(cache=\.\.\.\)"):
            make_proxy(cache=cache)

    def test_record_decisions_raises_with_migration_hint(self, make_proxy):
        with pytest.raises(TypeError, match=r"ProxyConfig\(record_decisions=\.\.\.\)"):
            make_proxy(record_decisions=True)

    def test_multiple_kwargs_named_together(self, make_proxy):
        with pytest.raises(TypeError) as excinfo:
            make_proxy(history_enabled=False, record_decisions=True)
        message = str(excinfo.value)
        assert "history_enabled" in message
        assert "record_decisions" in message

    def test_legacy_kwarg_rejected_even_alongside_config(self, make_proxy):
        with pytest.raises(TypeError, match="record_decisions"):
            make_proxy(ProxyConfig(history_enabled=False), record_decisions=True)

    def test_unknown_kwargs_still_rejected(self, make_proxy):
        with pytest.raises(TypeError, match="unexpected keyword"):
            make_proxy(frobnicate=True)


class TestModernPath:
    def test_config_object_carries_all_fields(self, make_proxy):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            proxy = make_proxy(
                ProxyConfig(
                    history_enabled=False, record_decisions=True, decision_log_cap=7
                )
            )
        assert proxy.config.history_enabled is False
        assert proxy.checker.history_enabled is False
        assert proxy.config.record_decisions is True
        assert proxy.config.decision_log_cap == 7

    def test_readonly_accessors_still_answer(self, make_proxy, calendar_policy):
        cache = DecisionCache(calendar_policy)
        proxy = make_proxy(ProxyConfig(cache=cache, record_decisions=True))
        assert proxy.cache is cache
        assert proxy.record_decisions is True

    def test_defaults_emit_no_warning(self, make_proxy):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_proxy()
