"""Property tests: the indexed DecisionCache is observably the seed cache.

The discrimination/reverse indexes (see ``repro.enforce.cache``) are pure
lookup accelerators — they must never change what the cache answers.
``SeedReferenceCache`` below preserves the pre-index implementation
verbatim (linear scan over every template under a key, linear scan over
every key on invalidation); the hypothesis property drives arbitrary
interleavings of store / lookup / invalidate_table through both and
demands identical decisions, hit/miss counters, eviction counts, and
sizes at every step.

Also here: the instrumentation assertion that ``invalidate_table`` no
longer visits unaffected skeleton keys, and the ``_equality_partition``
bool-vs-int regression (``True`` and ``1`` hash alike but must not be
treated as equal when building equality patterns).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.enforce.cache import (
    DecisionCache,
    _equality_partition,
    _fact_matches,
    _Template,
    _value_key,
)
from repro.enforce.decision import Decision
from repro.relalg.cq import Atom, Const
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.sqlir.printer import to_sql
from repro.sqlir.skeleton import skeletonize
from repro.workloads import calendar_app


class SeedReferenceCache:
    """The pre-index DecisionCache, preserved as the behavioral oracle.

    Linear scan over all templates under a skeleton key on lookup,
    linear scan over *all* skeleton keys on invalidation — exactly the
    seed implementation this PR replaced. Shares the generalization
    helpers (``_equality_partition`` etc.) with the real cache so the
    comparison isolates the indexing change.
    """

    def __init__(self, policy):
        self._templates: dict[object, list[_Template]] = {}
        self._view_constants = policy.constants()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, stmt, bindings, trace):
        skeleton = skeletonize(stmt)
        candidates = self._templates.get(skeleton.statement, ())
        param_items = sorted(bindings.items())
        for template in candidates:
            if self._matches(template, skeleton, param_items, trace):
                self.hits += 1
                return Decision(
                    allowed=True,
                    sql=to_sql(stmt),
                    reason=template.reason,
                    from_cache=True,
                )
        self.misses += 1
        return None

    def _matches(self, template, skeleton, param_items, trace):
        for index, value in template.pinned:
            if skeleton.values[index] != value:
                return False
        if _equality_partition(skeleton.values, param_items) != template.equality_pattern:
            return False
        if template.fact_patterns:
            if trace is None:
                return False
            facts = trace.facts
            params = dict(param_items)
            for rel, pattern_args in template.fact_patterns:
                if not any(
                    _fact_matches(fact, rel, pattern_args, skeleton.values, params)
                    for fact in facts
                ):
                    return False
        return True

    def store(self, stmt, bindings, decision):
        if not decision.allowed or decision.from_cache:
            return
        skeleton = skeletonize(stmt)
        param_items = sorted(bindings.items())
        pinned = []
        for index, value in enumerate(skeleton.values):
            if not skeleton.generalizable[index] or value in self._view_constants:
                pinned.append((index, value))
        fact_patterns = []
        tables = {ref.name for ref in stmt.tables()}
        for fact in decision.facts_used:
            fact_patterns.append((fact.rel, self._seed_pattern_of(fact, skeleton.values, param_items)))
            tables.add(fact.rel)
        template = _Template(
            skeleton_key=skeleton.statement,
            pinned=tuple(pinned),
            equality_pattern=_equality_partition(skeleton.values, param_items),
            fact_patterns=tuple(fact_patterns),
            reason=decision.reason + " [template]",
            tables=frozenset(tables),
        )
        bucket = self._templates.setdefault(skeleton.statement, [])
        # The unified skeleton store dedups exact re-derivations (the
        # checker's compiled store and the proxy may both generalize the
        # same decision); the oracle mirrors that so size stays comparable.
        if template not in bucket:
            bucket.append(template)

    @staticmethod
    def _seed_pattern_of(fact, values, param_items):
        from repro.enforce.trace import is_labeled_null

        params = {name: value for name, value in param_items}
        pattern = []
        for arg in fact.args:
            if is_labeled_null(arg):
                pattern.append(("any", None))
                continue
            if isinstance(arg, Const):
                slot = next(
                    (i for i, v in enumerate(values) if _value_key(v) == _value_key(arg.value)),
                    None,
                )
                if slot is not None:
                    pattern.append(("slot", slot))
                    continue
                param_name = next(
                    (
                        name
                        for name, value in params.items()
                        if _value_key(value) == _value_key(arg.value)
                    ),
                    None,
                )
                if param_name is not None:
                    pattern.append(("param", param_name))
                    continue
                pattern.append(("const", arg.value))
                continue
            pattern.append(("any", None))
        return tuple(pattern)

    def invalidate_table(self, table):
        evicted = 0
        for key in list(self._templates):
            templates = self._templates[key]
            kept = [t for t in templates if table not in t.tables]
            if len(kept) == len(templates):
                continue
            evicted += len(templates) - len(kept)
            if kept:
                self._templates[key] = kept
            else:
                del self._templates[key]
        self.invalidations += evicted
        return evicted

    @property
    def size(self):
        return sum(len(templates) for templates in self._templates.values())


# --------------------------------------------------------------------------
# Scenario generation
# --------------------------------------------------------------------------

SHAPES = [
    "SELECT EId FROM Attendance WHERE UId = ?",
    "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
    "SELECT * FROM Events WHERE EId = ?",
    "SELECT Title, Loc FROM Events WHERE EId = ?",
    "SELECT Name FROM Users WHERE UId = ?",
]
HOLES = [1, 2, 1, 1, 1]
TABLES = ["Attendance", "Events", "Users", "Unrelated"]

# Values chosen to stress the equality machinery: 0/1 vs False/True hash
# alike, strings collide with nothing.
values = st.sampled_from([0, 1, 2, 3, True, False, "a", "b"])


class StubTrace:
    """The one thing the cache reads from a trace: its fact tuple."""

    def __init__(self, facts):
        self.facts = tuple(facts)


def fact_atoms(pairs):
    return tuple(Atom("Attendance", (Const(a), Const(b))) for a, b in pairs)


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(["store", "store", "lookup", "lookup", "invalidate"]))
        if kind == "invalidate":
            ops.append(("invalidate", draw(st.sampled_from(TABLES))))
            continue
        shape = draw(st.integers(min_value=0, max_value=len(SHAPES) - 1))
        args = [draw(values) for _ in range(HOLES[shape])]
        user = draw(values)
        facts = draw(st.lists(st.tuples(values, values), max_size=2))
        if kind == "store":
            allowed = draw(st.booleans())
            ops.append(("store", shape, args, user, facts, allowed))
        else:
            ops.append(("lookup", shape, args, user, facts))
    return ops


@pytest.fixture(scope="module")
def policy():
    return calendar_app.ground_truth_policy()


def normalized(decision):
    """A hit decision with timing scrubbed (the only legitimate delta)."""
    if decision is None:
        return None
    return replace(decision, duration_s=0.0)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(ops=operations())
def test_indexed_cache_is_observably_the_seed_cache(ops, policy):
    indexed = DecisionCache(policy)
    reference = SeedReferenceCache(policy)
    for op in ops:
        if op[0] == "invalidate":
            _, table = op
            assert indexed.invalidate_table(table) == reference.invalidate_table(table)
        elif op[0] == "store":
            _, shape, args, user, facts, allowed = op
            stmt = bind_parameters(parse_select(SHAPES[shape]), args)
            decision = Decision(
                allowed=allowed,
                sql=to_sql(stmt),
                reason="fuzzed",
                facts_used=fact_atoms(facts),
            )
            indexed.store(stmt, {"MyUId": user}, decision)
            reference.store(stmt, {"MyUId": user}, decision)
        else:
            _, shape, args, user, facts = op
            stmt = bind_parameters(parse_select(SHAPES[shape]), args)
            trace = StubTrace(fact_atoms(facts))
            got = indexed.lookup(stmt, {"MyUId": user}, trace)
            want = reference.lookup(stmt, {"MyUId": user}, trace)
            assert normalized(got) == normalized(want)
        assert indexed.size == reference.size
        assert indexed.hits == reference.hits
        assert indexed.misses == reference.misses
        assert indexed.invalidations == reference.invalidations


# --------------------------------------------------------------------------
# Invalidation instrumentation: O(affected), not O(cache)
# --------------------------------------------------------------------------


def synthetic_template(key, table):
    return _Template(
        skeleton_key=key,
        pinned=(),
        equality_pattern=(),
        fact_patterns=(),
        reason="synthetic",
        tables=frozenset({table}),
    )


class TestInvalidationScansOnlyAffectedKeys:
    def test_unaffected_skeleton_keys_never_visited(self, policy=None):
        cache = DecisionCache(calendar_app.ground_truth_policy())
        for i in range(50):
            cache._insert_template(synthetic_template(f"att-{i}", "Attendance"))
        for i in range(5):
            cache._insert_template(synthetic_template(f"usr-{i}", "Users"))
        assert cache.size == 55
        before = cache.invalidate_keys_scanned
        assert cache.invalidate_table("Users") == 5
        # Exactly the 5 Users keys were visited; none of the 50
        # Attendance keys were examined.
        assert cache.invalidate_keys_scanned - before == 5
        assert cache.invalidate_table("NoSuchTable") == 0
        assert cache.invalidate_keys_scanned - before == 5
        assert cache.size == 50

    def test_multi_table_template_unlinked_everywhere(self):
        cache = DecisionCache(calendar_app.ground_truth_policy())
        cache._insert_template(
            _Template(
                skeleton_key="k",
                pinned=(),
                equality_pattern=(),
                fact_patterns=(),
                reason="synthetic",
                tables=frozenset({"Events", "Attendance"}),
            )
        )
        assert cache.invalidate_table("Events") == 1
        # The template's other table must not retain a dangling key.
        before = cache.invalidate_keys_scanned
        assert cache.invalidate_table("Attendance") == 0
        assert cache.invalidate_keys_scanned == before


# --------------------------------------------------------------------------
# bool-vs-int regression
# --------------------------------------------------------------------------


class TestBoolIntDistinctness:
    def test_equality_partition_keeps_true_and_1_apart(self):
        # hash(True) == hash(1) and True == 1, yet the checker's constraint
        # reasoning treats them as distinct constants — the partition must too.
        assert _equality_partition((True, 1), []) == ()
        assert _equality_partition((1, 1), []) == ((0, 1),)
        assert _equality_partition((True, True), []) == ((0, 1),)
        assert _equality_partition((False, 0), []) == ()
        # Params participate under the same key rule.
        assert _equality_partition((True,), [("MyUId", 1)]) == ()
        assert _equality_partition((1,), [("MyUId", 1)]) == ((-1, 0),)

    def test_lookup_distinguishes_bool_from_int_instantiations(self):
        policy = calendar_app.ground_truth_policy()
        indexed = DecisionCache(policy)
        reference = SeedReferenceCache(policy)
        sql = "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?"
        stored = bind_parameters(parse_select(sql), [1, 1])
        decision = Decision(allowed=True, sql=to_sql(stored), reason="r")
        for cache in (indexed, reference):
            cache.store(stored, {"MyUId": 1}, decision)
        # (True, 1) induces a different partition than (1, 1): must miss,
        # identically in both implementations.
        probe = bind_parameters(parse_select(sql), [True, 1])
        assert indexed.lookup(probe, {"MyUId": 1}, None) is None
        assert reference.lookup(probe, {"MyUId": 1}, None) is None
