"""Decision-template cache tests: generalization and its soundness limits."""

import pytest

from repro.enforce.cache import DecisionCache
from repro.enforce.checker import ComplianceChecker
from repro.enforce.trace import Trace
from repro.engine.executor import Result
from repro.relalg.translate import translate_select
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select


def bound(sql, args=()):
    return bind_parameters(parse_select(sql), list(args))


@pytest.fixture
def checker(calendar_schema, calendar_policy):
    return ComplianceChecker(calendar_schema, calendar_policy)


@pytest.fixture
def cache(calendar_policy):
    return DecisionCache(calendar_policy)


def warm(cache, checker, sql, args, bindings, trace=None):
    stmt = bound(sql, args)
    decision = checker.check(stmt, bindings, trace)
    assert decision.allowed
    cache.store(stmt, bindings, decision)
    return decision


class TestTemplateGeneralization:
    def test_same_shape_different_constants_hits(self, cache, checker):
        warm(cache, checker, "SELECT EId FROM Attendance WHERE UId = ?", [1], {"MyUId": 1})
        hit = cache.lookup(
            bound("SELECT EId FROM Attendance WHERE UId = ?", [7]), {"MyUId": 7}, None
        )
        assert hit is not None
        assert hit.from_cache

    def test_user_equality_pattern_enforced(self, cache, checker):
        warm(cache, checker, "SELECT EId FROM Attendance WHERE UId = ?", [1], {"MyUId": 1})
        # Asking for user 7's rows as user 8 breaks the equality pattern.
        miss = cache.lookup(
            bound("SELECT EId FROM Attendance WHERE UId = ?", [7]), {"MyUId": 8}, None
        )
        assert miss is None

    def test_distinctness_pattern_enforced(self, cache, checker):
        # Store with constants that do not collide with the SELECT-list
        # literal 1; a collision would (soundly but needlessly) constrain
        # the template's equality pattern.
        warm(
            cache,
            checker,
            "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
            [5, 9],
            {"MyUId": 5},
        )
        # uid == eid collapses two slots that were distinct in the template.
        miss = cache.lookup(
            bound("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [3, 3]),
            {"MyUId": 3},
            None,
        )
        assert miss is None
        # Same pattern (uid == session, eid distinct) hits.
        hit = cache.lookup(
            bound("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [3, 4]),
            {"MyUId": 3},
            None,
        )
        assert hit is not None

    def test_order_comparison_slots_pinned(
        self, cache, calendar_schema, calendar_policy
    ):
        from repro.policy import Policy, View
        from repro.workloads import employees

        schema = employees.make_schema()
        policy = employees.ground_truth_policy()
        checker = ComplianceChecker(schema, policy)
        cache = DecisionCache(policy)
        stmt = bound("SELECT Name FROM Employees WHERE Age >= ?", [60])
        decision = checker.check(stmt, {"MyUId": 1})
        assert decision.allowed
        cache.store(stmt, {"MyUId": 1}, decision)
        # Same shape with a different bound must NOT hit: 40 is pinned.
        miss = cache.lookup(
            bound("SELECT Name FROM Employees WHERE Age >= ?", [40]), {"MyUId": 1}, None
        )
        assert miss is None
        hit = cache.lookup(
            bound("SELECT Name FROM Employees WHERE Age >= ?", [60]), {"MyUId": 1}, None
        )
        assert hit is not None

    def test_block_decisions_not_cached(self, cache, checker):
        stmt = bound("SELECT * FROM Events")
        decision = checker.check(stmt, {"MyUId": 1})
        assert not decision.allowed
        cache.store(stmt, {"MyUId": 1}, decision)
        assert cache.size == 0


class TestFactPatterns:
    def test_history_dependent_decision_needs_matching_facts(
        self, cache, checker, calendar_schema
    ):
        trace = Trace()
        q1 = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"),
            calendar_schema,
        ).disjuncts[0]
        trace.record("q1", q1, Result(columns=["c"], rows=[(1,)]))
        warm(
            cache,
            checker,
            "SELECT * FROM Events WHERE EId = ?",
            [2],
            {"MyUId": 1},
            trace,
        )
        # Fresh trace without the fact: must not hit.
        assert (
            cache.lookup(
                bound("SELECT * FROM Events WHERE EId = ?", [2]), {"MyUId": 1}, Trace()
            )
            is None
        )
        # A matching fact for different constants: hits with renamed slots.
        other = Trace()
        q1b = translate_select(
            bound("SELECT 1 FROM Attendance WHERE UId = 5 AND EId = 9"),
            calendar_schema,
        ).disjuncts[0]
        other.record("q1b", q1b, Result(columns=["c"], rows=[(1,)]))
        hit = cache.lookup(
            bound("SELECT * FROM Events WHERE EId = ?", [9]), {"MyUId": 5}, other
        )
        assert hit is not None


class TestStats:
    def test_hit_rate(self, cache, checker):
        warm(cache, checker, "SELECT EId FROM Attendance WHERE UId = ?", [1], {"MyUId": 1})
        cache.lookup(
            bound("SELECT EId FROM Attendance WHERE UId = ?", [2]), {"MyUId": 2}, None
        )
        cache.lookup(bound("SELECT * FROM Events"), {"MyUId": 2}, None)
        assert cache.hits == 1
        assert cache.misses >= 1
        assert 0 < cache.hit_rate < 1
