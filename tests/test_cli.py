"""CLI tests: each subcommand through main(argv)."""

import pytest

from repro.cli import main
from repro.policy import policy_from_text
from repro.workloads import calendar_app


class TestDemo:
    def test_demo_succeeds(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Q1 -> ALLOW" in out
        assert "BLOCK" in out


class TestExtract:
    def test_symbolic_extract(self, capsys):
        assert main(["extract", "--app", "calendar", "--method", "symbolic"]) == 0
        out = capsys.readouterr().out
        assert "?MyUId" in out
        assert "precision=1.00 recall=1.00" in out

    def test_mined_extract(self, capsys):
        assert (
            main(
                [
                    "extract",
                    "--app",
                    "calendar",
                    "--method",
                    "mine",
                    "--traces",
                    "60",
                    "--size",
                    "12",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "observed 60 traces" in out

    def test_extract_writes_loadable_policy(self, tmp_path, capsys):
        out_file = tmp_path / "policy.txt"
        assert (
            main(
                [
                    "extract",
                    "--app",
                    "calendar",
                    "--method",
                    "symbolic",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        schema = calendar_app.make_schema()
        policy = policy_from_text(out_file.read_text(), schema)
        assert len(policy) >= 4


class TestEnforce:
    def test_allow_and_block(self, capsys):
        code = main(
            [
                "enforce",
                "--app",
                "calendar",
                "--user",
                "1",
                "--sql",
                "SELECT EId FROM Attendance WHERE UId = 1",
                "--sql",
                "SELECT * FROM Events",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ALLOW" in out
        assert "BLOCK" in out


class TestAudit:
    def test_hospital_audit_detects_nqi(self, capsys):
        code = main(
            [
                "audit",
                "--app",
                "hospital",
                "--sensitive",
                "SELECT Disease FROM PatientConditions WHERE PId = 1",
                "--constraints",
            ]
        )
        assert code == 1  # disclosure found
        out = capsys.readouterr().out
        assert "NQI holds" in out

    def test_clean_audit_exits_zero(self, capsys):
        code = main(
            [
                "audit",
                "--app",
                "hospital",
                "--sensitive",
                "SELECT Disease FROM PatientConditions WHERE PId = 1",
            ]
        )
        assert code == 0
        assert "no NQI witness" in capsys.readouterr().out

    def test_bad_sensitive_query(self, capsys):
        code = main(
            ["audit", "--app", "hospital", "--sensitive", "SELECT nope FROM nowhere"]
        )
        assert code == 2


class TestDiagnose:
    def test_diagnosis_prints_patches(self, capsys):
        code = main(
            [
                "diagnose",
                "--app",
                "calendar",
                "--user",
                "1",
                "--sql",
                "SELECT * FROM Events WHERE EId = 2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "access-check patch" in out
        assert "counterexample" in out


class TestPolicyDiff:
    def test_identical_policies_are_exact(self, tmp_path, capsys):
        from repro.policy import policy_to_text

        policy_file = tmp_path / "policy.txt"
        policy_file.write_text(policy_to_text(calendar_app.ground_truth_policy()))
        code = main(
            ["policy-diff", "--app", "calendar", str(policy_file), "ground-truth"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision=1.000 recall=1.000 exact=True" in out
        assert "V2: covered" in out

    def test_lost_view_fails_with_nonzero_exit(self, tmp_path, capsys):
        from repro.policy import policy_to_text
        from repro.policy.policy import Policy

        truth = calendar_app.ground_truth_policy()
        reduced = Policy([v for v in truth.views if v.name != "V2"], name="minus-V2")
        policy_file = tmp_path / "reduced.txt"
        policy_file.write_text(policy_to_text(reduced))
        code = main(
            ["policy-diff", "--app", "calendar", str(policy_file), "ground-truth"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "recall=0.750" in out
        assert "V2: NOT covered" in out


class TestParser:
    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["extract", "--app", "nope"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main([])
