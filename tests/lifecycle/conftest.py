"""Shared lifecycle-test fixtures: a calendar gateway with known data."""

from __future__ import annotations

import pytest

from repro.policy.policy import Policy
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


@pytest.fixture
def calendar_pair():
    """(app, db) with the Example 2.1 attendance row guaranteed present."""
    app = calendar_app.make_app()
    db = app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    return app, db


@pytest.fixture
def gateway(calendar_pair):
    app, db = calendar_pair
    gw = EnforcementGateway(db, app.ground_truth_policy(), GatewayConfig())
    yield gw
    gw.close()


def reduced_policy(policy: Policy, drop: str = "V2") -> Policy:
    """The ground-truth policy minus one view (the seeded regression)."""
    return Policy([v for v in policy.views if v.name != drop], name=f"minus-{drop}")
