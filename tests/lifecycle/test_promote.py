"""Promotion gates: shadow agreement, semantic compare, disclosure regression."""

from __future__ import annotations

import pytest

from repro.enforce.decision import PolicyViolation
from repro.lifecycle import (
    GateConfig,
    LifecycleManager,
    SensitiveCase,
    evaluate_gates,
)
from repro.lifecycle.promote import subsumption_matrix
from repro.lifecycle.shadow import ShadowRunner
from repro.policy.policy import Policy, View
from repro.relalg.translate import translate_select
from tests.lifecycle.conftest import reduced_policy


def gate(report, name):
    (found,) = [g for g in report.gates if g.name == name]
    return found


def run_traffic(gateway, statements):
    connection = gateway.connect(1)
    for sql in statements:
        try:
            connection.query(sql)
        except PolicyViolation:
            pass
    assert gateway.shadow.drain(timeout_s=20.0)


ALLOWED_TRAFFIC = [
    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}" for eid in range(1, 6)
]


class TestIndividualGates:
    def test_all_gates_pass_for_equivalent_candidate(self, calendar_pair, gateway):
        app, db = calendar_pair
        candidate = Policy(app.ground_truth_policy().views, name="copy")
        runner = ShadowRunner(gateway, candidate, 2)
        gateway.shadow = runner
        run_traffic(gateway, ALLOWED_TRAFFIC)
        report = evaluate_gates(
            gateway.policy, candidate, runner, GateConfig(min_shadow_checks=5),
            db.schema, candidate_version=2,
        )
        assert report.passed
        assert not report.diagnoses
        assert [g.name for g in report.gates] == ["shadow", "compare", "disclosure"]

    def test_too_few_shadow_checks_fails_the_shadow_gate(self, calendar_pair, gateway):
        app, db = calendar_pair
        candidate = app.ground_truth_policy()
        runner = ShadowRunner(gateway, candidate, 2)
        gateway.shadow = runner
        run_traffic(gateway, ALLOWED_TRAFFIC[:2])
        report = evaluate_gates(
            gateway.policy, candidate, runner, GateConfig(min_shadow_checks=100),
            db.schema,
        )
        assert not report.passed
        assert not gate(report, "shadow").passed
        assert "only 2 shadow checks" in gate(report, "shadow").detail

    def test_no_shadow_run_fails_closed(self, calendar_pair, gateway):
        app, db = calendar_pair
        report = evaluate_gates(
            gateway.policy, app.ground_truth_policy(), None, GateConfig(), db.schema
        )
        assert not gate(report, "shadow").passed

    def test_divergences_fail_the_gate_with_diagnoses(self, calendar_pair, gateway):
        app, db = calendar_pair
        candidate = reduced_policy(app.ground_truth_policy())
        runner = ShadowRunner(gateway, candidate, 2)
        gateway.shadow = runner
        run_traffic(
            gateway,
            ALLOWED_TRAFFIC
            + [
                "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2",
                "SELECT * FROM Events WHERE EId = 2",
            ],
        )
        report = evaluate_gates(
            gateway.policy, candidate, runner, GateConfig(min_shadow_checks=5),
            db.schema,
        )
        shadow_gate = gate(report, "shadow")
        assert not shadow_gate.passed and "allow→block" in shadow_gate.detail
        assert report.diagnoses
        assert "allow_to_block" in report.diagnoses[0]

    def test_lost_view_fails_the_compare_gate(self, calendar_pair, gateway):
        app, db = calendar_pair
        candidate = reduced_policy(app.ground_truth_policy())
        report = evaluate_gates(
            gateway.policy, candidate, None, GateConfig(), db.schema
        )
        compare = gate(report, "compare")
        assert not compare.passed
        assert "V2" in compare.detail

    def test_disclosure_gate_catches_new_pqi(self, calendar_pair, gateway):
        """A candidate leaking all profiles makes PQI newly hold on a
        sensitive query the active policy keeps uninferable."""
        app, db = calendar_pair
        leaky = Policy(
            list(app.ground_truth_policy().views)
            + [View("VAll", "SELECT * FROM Users", db.schema, "leaks everything")],
            name="leaky",
        )
        sensitive = translate_select(
            db.parse("SELECT Name FROM Users WHERE UId = 2"), db.schema
        ).disjuncts[0]
        config = GateConfig(
            sensitive_suite=(
                SensitiveCase("other-profile", sensitive, (("MyUId", 1),)),
            ),
        )
        report = evaluate_gates(gateway.policy, leaky, None, config, db.schema)
        disclosure = gate(report, "disclosure")
        assert not disclosure.passed
        assert "other-profile" in disclosure.detail
        # The active policy itself sails through its own disclosure gate.
        clean = evaluate_gates(
            gateway.policy, app.ground_truth_policy(), None, config, db.schema
        )
        assert gate(clean, "disclosure").passed


class TestManagerPromotion:
    def test_promotion_swaps_and_stops_shadow(self, calendar_pair, gateway):
        app, db = calendar_pair
        manager = LifecycleManager(
            gateway, gates=GateConfig(min_shadow_checks=5)
        )
        registered = manager.start_shadow(
            Policy(app.ground_truth_policy().views, name="mined"),
            provenance="extracted",
        )
        run_traffic(gateway, ALLOWED_TRAFFIC)
        report = manager.promote()
        assert report.promoted
        assert gateway.policy_version == registered.version == 2
        assert gateway.shadow is None
        assert manager.registry.active_version == 2
        assert gateway.metrics.counter("promotions") == 1

    def test_failed_promotion_keeps_shadow_running(self, calendar_pair, gateway):
        app, db = calendar_pair
        manager = LifecycleManager(
            gateway, gates=GateConfig(min_shadow_checks=5)
        )
        manager.start_shadow(reduced_policy(app.ground_truth_policy()))
        run_traffic(
            gateway,
            ALLOWED_TRAFFIC
            + [
                "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2",
                "SELECT * FROM Events WHERE EId = 2",
            ],
        )
        report = manager.promote()
        assert not report.promoted and not report.passed
        assert report.diagnoses
        assert gateway.shadow is not None  # operator decides what happens next
        assert gateway.policy_version == 1
        assert gateway.metrics.counter("promotions_rejected") == 1
        manager.stop_shadow()
        assert gateway.shadow is None

    def test_second_shadow_rejected_while_one_runs(self, calendar_pair, gateway):
        from repro.lifecycle.reload import LifecycleError

        app, db = calendar_pair
        manager = LifecycleManager(gateway)
        manager.start_shadow(app.ground_truth_policy())
        with pytest.raises(LifecycleError):
            manager.start_shadow(app.ground_truth_policy())
        manager.stop_shadow()

    def test_rollback_after_promotion_restores_prior_version(
        self, calendar_pair, gateway
    ):
        app, db = calendar_pair
        manager = LifecycleManager(
            gateway, gates=GateConfig(min_shadow_checks=3)
        )
        manager.start_shadow(reduced_policy(app.ground_truth_policy(), drop="V4"))
        run_traffic(gateway, ALLOWED_TRAFFIC[:3])
        # V4 loss fails compare; promote with relaxed thresholds to force
        # the swap, then roll back.
        report = manager.promote(
            gates=GateConfig(min_shadow_checks=3, min_recall=0.0)
        )
        assert report.promoted and gateway.policy_version == 2
        rollback = manager.rollback()
        assert rollback.new_version == 1
        assert "V4" in gateway.policy


class TestSubsumptionMatrix:
    def test_rows_cover_both_directions(self, calendar_pair):
        app, db = calendar_pair
        truth = app.ground_truth_policy()
        candidate = reduced_policy(truth)
        rows = subsumption_matrix(candidate, truth)
        directions = {direction for direction, _, _ in rows}
        assert directions == {"candidate→truth", "truth→candidate"}
        verdicts = {
            (direction, name): covered for direction, name, covered in rows
        }
        assert verdicts[("truth→candidate", "V2")] is False
        assert verdicts[("candidate→truth", "V1")] is True
