"""PolicyRegistry: version ids, fingerprints, provenance, rollback targets."""

import pytest

from repro.lifecycle.registry import PolicyRegistry, RegistryError
from repro.policy.policy import Policy


@pytest.fixture
def registry():
    return PolicyRegistry()


class TestRegistration:
    def test_version_ids_are_monotonic(self, registry, calendar_policy):
        first = registry.register(calendar_policy)
        second = registry.register(calendar_policy)
        assert (first.version, second.version) == (1, 2)
        assert len(registry) == 2

    def test_fingerprint_and_text_recorded(self, registry, calendar_policy):
        version = registry.register(calendar_policy, label="truth")
        assert version.fingerprint == calendar_policy.fingerprint()
        assert "view V1" in version.text
        assert version.label == "truth"

    def test_same_content_shares_fingerprint(self, registry, calendar_policy):
        registry.register(calendar_policy)
        registry.register(Policy(calendar_policy.views, name="copy"))
        matches = registry.find_fingerprint(calendar_policy.fingerprint())
        assert [pv.version for pv in matches] == [1, 2]

    def test_provenance_is_validated(self, registry, calendar_policy):
        registry.register(calendar_policy, provenance="extracted")
        registry.register(calendar_policy, provenance="patched")
        with pytest.raises(RegistryError, match="provenance"):
            registry.register(calendar_policy, provenance="downloaded")

    def test_unknown_version_raises(self, registry):
        with pytest.raises(RegistryError, match="version 7"):
            registry.get(7)


class TestActivationAndRollback:
    def test_rollback_target_is_previous_distinct_activation(
        self, registry, calendar_policy
    ):
        v1 = registry.register(calendar_policy)
        v2 = registry.register(calendar_policy)
        registry.record_activation(v1.version)
        registry.record_activation(v2.version)
        assert registry.active_version == 2
        assert registry.rollback_target().version == 1

    def test_repeated_activation_of_current_is_skipped(self, registry, calendar_policy):
        v1 = registry.register(calendar_policy)
        v2 = registry.register(calendar_policy)
        registry.record_activation(v1.version)
        registry.record_activation(v2.version)
        registry.record_activation(v2.version)
        assert registry.rollback_target().version == 1

    def test_rollback_without_history_raises(self, registry, calendar_policy):
        with pytest.raises(RegistryError):
            registry.rollback_target()
        v1 = registry.register(calendar_policy)
        registry.record_activation(v1.version)
        with pytest.raises(RegistryError):
            registry.rollback_target()

    def test_activating_unregistered_version_raises(self, registry):
        with pytest.raises(RegistryError):
            registry.record_activation(3)


class TestBoundedHistory:
    def test_old_unactivated_versions_are_evicted(self, calendar_policy):
        registry = PolicyRegistry(history_cap=3)
        versions = [registry.register(calendar_policy).version for _ in range(6)]
        assert len(registry) == 3
        assert versions[0] not in registry
        assert versions[-1] in registry

    def test_activation_targets_survive_eviction(self, calendar_policy):
        registry = PolicyRegistry(history_cap=2)
        v1 = registry.register(calendar_policy)
        registry.record_activation(v1.version)
        for _ in range(5):
            last = registry.register(calendar_policy)
        registry.record_activation(last.version)
        assert v1.version in registry  # pinned by the activation history
        assert registry.rollback_target().version == v1.version

    def test_tiny_cap_rejected(self):
        with pytest.raises(ValueError):
            PolicyRegistry(history_cap=1)
