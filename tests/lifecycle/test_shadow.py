"""Shadow mode: candidate policies trialed against live gateway traffic."""

from __future__ import annotations

import pytest

from repro.enforce.decision import PolicyViolation
from repro.lifecycle import DivergenceLog, ShadowRunner
from repro.lifecycle.shadow import Divergence
from repro.policy.policy import Policy, View
from tests.lifecycle.conftest import reduced_policy


def start_shadow(gateway, candidate, version=2, **kwargs) -> ShadowRunner:
    runner = ShadowRunner(gateway, candidate, version, **kwargs)
    gateway.shadow = runner
    return runner


def finish(runner) -> dict:
    assert runner.drain(timeout_s=20.0)
    return runner.stats()


class TestAgreement:
    def test_identical_candidate_never_diverges(self, calendar_pair, gateway):
        app, db = calendar_pair
        runner = start_shadow(gateway, app.ground_truth_policy())
        connection = gateway.connect(1)
        for eid in range(1, 6):
            connection.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
        stats = finish(runner)
        assert stats["checks"] == 5
        assert stats["divergences"] == 0

    def test_blocked_statements_are_shadow_checked_too(self, calendar_pair, gateway):
        app, db = calendar_pair
        runner = start_shadow(gateway, app.ground_truth_policy())
        connection = gateway.connect(1)
        with pytest.raises(PolicyViolation):
            connection.query("SELECT * FROM Events WHERE EId = 2")
        stats = finish(runner)
        assert stats["checks"] == 1
        assert stats["divergences"] == 0


class TestRegressionDetection:
    def test_allow_to_block_caught_on_history_gated_query(self, calendar_pair, gateway):
        """Candidate minus V2 flips the Example 2.1 allow to a block."""
        app, db = calendar_pair
        runner = start_shadow(gateway, reduced_policy(app.ground_truth_policy()))
        connection = gateway.connect(1)
        connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        connection.query("SELECT * FROM Events WHERE EId = 2")  # allowed by V2
        stats = finish(runner)
        assert stats["allow_to_block"] == 1
        (divergence,) = [
            d for d in runner.log.entries() if d.kind == "allow_to_block"
        ]
        assert "Events" in divergence.sql
        assert divergence.active_allowed and not divergence.candidate_allowed
        assert (divergence.active_version, divergence.candidate_version) == (1, 2)
        assert divergence.trace_len > 0  # the snapshot carries the Q1 history

    def test_block_to_allow_caught_on_attack_query(self, calendar_pair, gateway):
        """An over-broad candidate (all of Events) flips a block to an allow."""
        app, db = calendar_pair
        broad = Policy(
            list(app.ground_truth_policy().views)
            + [View("VAll", "SELECT * FROM Events", db.schema, "too broad")],
            name="over-broad",
        )
        runner = start_shadow(gateway, broad)
        connection = gateway.connect(1)
        with pytest.raises(PolicyViolation):
            connection.query("SELECT * FROM Events WHERE EId = 2")
        stats = finish(runner)
        assert stats["block_to_allow"] == 1
        (divergence,) = runner.log.entries()
        assert divergence.kind == "block_to_allow"
        assert not divergence.active_allowed and divergence.candidate_allowed

    def test_snapshot_pins_decision_time_history(self, calendar_pair, gateway):
        """A later Q1 must not retroactively justify the earlier Q2 shadow check.

        Q2 arrives *before* the Q1 that would justify it under the
        candidate; the shadow check for Q2 must see the empty trace the
        active decision saw, not the trace as of check time.
        """
        app, db = calendar_pair
        runner = start_shadow(gateway, app.ground_truth_policy())
        connection = gateway.connect(1)
        with pytest.raises(PolicyViolation):
            connection.query("SELECT * FROM Events WHERE EId = 2")
        connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        connection.query("SELECT * FROM Events WHERE EId = 2")
        stats = finish(runner)
        # Identical policies: if snapshots leaked, the first (blocked) Q2
        # would shadow-decide allow and show up as a fake divergence.
        assert stats["checks"] == 3
        assert stats["divergences"] == 0


class TestPooledShadow:
    def test_candidate_pool_detects_same_regressions(self, calendar_pair, gateway):
        app, db = calendar_pair
        runner = start_shadow(
            gateway, reduced_policy(app.ground_truth_policy()), workers=1
        )
        try:
            connection = gateway.connect(1)
            connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
            connection.query("SELECT * FROM Events WHERE EId = 2")
            stats = finish(runner)
            assert stats["allow_to_block"] == 1
            assert stats["errors"] == 0
        finally:
            runner.close()
            gateway.shadow = None


class TestBackpressureAndLog:
    def test_queue_overflow_drops_instead_of_blocking(self, calendar_pair, gateway):
        app, db = calendar_pair
        runner = start_shadow(gateway, app.ground_truth_policy(), max_pending=0)
        connection = gateway.connect(1)
        connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        stats = runner.stats()
        assert stats["dropped"] == 1
        assert stats["submitted"] == 0

    def test_divergence_log_is_bounded_but_counters_exact(self):
        log = DivergenceLog(cap=2)
        for index in range(5):
            log.record(
                Divergence(
                    sql=f"SELECT {index}",
                    stmt=None,
                    bindings=(),
                    trace_len=0,
                    active_allowed=True,
                    candidate_allowed=False,
                    active_version=1,
                    candidate_version=2,
                )
            )
        assert len(log.entries()) == 2
        assert log.stats()["divergences"] == 5
        assert log.stats()["allow_to_block"] == 5

    def test_closed_runner_sheds_submissions(self, calendar_pair, gateway):
        app, db = calendar_pair
        runner = start_shadow(gateway, app.ground_truth_policy())
        runner.close()
        gateway.shadow = None
        connection = gateway.connect(1)
        bound = db.parse("SELECT EId FROM Attendance WHERE UId = 1")
        decision = connection.decide(bound)
        assert decision.allowed
        assert not runner.submit(connection, bound, decision)
