"""Hot reload: atomic epoch swap, preserved traces, no torn decisions."""

from __future__ import annotations

import threading
import time

import pytest

from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import PolicyViolation
from repro.lifecycle import LifecycleManager, hot_reload
from repro.lifecycle.reload import LifecycleError
from repro.serve import EnforcementGateway, GatewayConfig
from repro.serve.pool import _TraceReplica
from tests.lifecycle.conftest import reduced_policy


class TestHotReload:
    def test_swap_changes_the_deciding_policy(self, calendar_pair, gateway):
        app, db = calendar_pair
        connection = gateway.connect(5)
        connection.query("SELECT EId FROM Attendance WHERE UId = 5")
        report = hot_reload(
            gateway, reduced_policy(app.ground_truth_policy()), version=2,
            provenance="patched",
        )
        assert report.new_version == 2 and gateway.policy_version == 2
        assert "V2" not in gateway.policy
        assert report.drained

    def test_decisions_stamp_their_epoch_version(self, calendar_pair, gateway):
        app, db = calendar_pair
        connection = gateway.connect(1)
        before = connection.decide(db.parse("SELECT EId FROM Attendance WHERE UId = 1"))
        hot_reload(gateway, app.ground_truth_policy(), version=2)
        after = connection.decide(db.parse("SELECT EId FROM Attendance WHERE UId = 1"))
        assert (before.policy_version, after.policy_version) == (1, 2)

    def test_traces_survive_and_keep_gating(self, calendar_pair, gateway):
        """Example 2.1 across a reload: Q1 under v1 justifies Q2 under v2."""
        app, db = calendar_pair
        connection = gateway.connect(1)
        connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        facts_before = len(connection.trace.facts)
        report = hot_reload(gateway, app.ground_truth_policy(), version=2)
        assert report.sessions_preserved == 1
        assert report.trace_facts_preserved == facts_before
        assert len(connection.trace.facts) == facts_before
        # The certified Q1 fact, recorded under v1, still justifies Q2 now.
        assert len(connection.query("SELECT * FROM Events WHERE EId = 2")) == 1
        # A fresh session has no such history and stays blocked.
        with pytest.raises(PolicyViolation):
            gateway.connect(1, fresh=True).query("SELECT * FROM Events WHERE EId = 2")

    def test_caches_are_rebuilt_not_migrated(self, calendar_pair, gateway):
        app, db = calendar_pair
        connection = gateway.connect(1)
        connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        old_cache = gateway.shared_cache
        assert old_cache.size == 1
        hot_reload(gateway, app.ground_truth_policy(), version=2)
        assert gateway.shared_cache is not old_cache
        assert gateway.shared_cache.size == 0
        # Re-warms from traffic under the new epoch.
        connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        assert gateway.shared_cache.size == 1

    def test_reload_counter_increments(self, calendar_pair, gateway):
        app, _ = calendar_pair
        hot_reload(gateway, app.ground_truth_policy(), version=2)
        assert gateway.metrics.counter("policy_reloads") == 1

    def test_reload_rebinds_pool_workers(self, calendar_pair):
        app, db = calendar_pair
        gateway = EnforcementGateway(
            db, app.ground_truth_policy(), GatewayConfig(check_workers=1)
        )
        try:
            connection = gateway.connect(1)
            connection.query("SELECT EId FROM Attendance WHERE UId = 1")
            old_pool = gateway.pool
            hot_reload(
                gateway, reduced_policy(app.ground_truth_policy(), drop="V3"),
                version=2,
            )
            assert gateway.pool is not old_pool
            # The new pool's workers decide under the new policy.
            connection2 = gateway.connect(2)
            with pytest.raises(PolicyViolation):
                connection2.query("SELECT Name FROM Users WHERE UId = 2")
        finally:
            gateway.close()


class TestNoTornDecisions:
    def test_concurrent_reloads_never_mix_policies(self, calendar_pair):
        """Audit every decision made during a reload storm and re-verify it
        against a fresh checker for the version that claims to have made
        it: with the epoch pinned per decision, the verdicts must agree."""
        self._run_reload_storm(calendar_pair, GatewayConfig())

    def test_reload_storm_through_the_compiled_batched_path(self, calendar_pair):
        """Same storm with the decision cache off, so every decision runs
        the epoch-compiled fast path and the check batcher — the
        re-verification checkers are template-free, so zero disagreements
        also means the compiled path never served a stale epoch's
        template."""
        self._run_reload_storm(calendar_pair, GatewayConfig(cache_mode="none"))

    def _run_reload_storm(self, calendar_pair, config):
        app, db = calendar_pair
        truth = app.ground_truth_policy()
        without_v2 = reduced_policy(truth)
        policies = {1: truth}
        gateway = EnforcementGateway(db, truth, config)
        audits = []
        audit_lock = threading.Lock()

        def audit(record):
            with audit_lock:
                audits.append(record)

        gateway.decision_audit = audit
        stop = threading.Event()
        errors = []

        def traffic(uid: int) -> None:
            connection = gateway.connect(uid)
            try:
                while not stop.is_set():
                    connection.query(f"SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = 2")
                    try:
                        connection.query("SELECT * FROM Events WHERE EId = 2")
                    except PolicyViolation:
                        pass
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=traffic, args=(uid,)) for uid in (1, 2, 3)]
        for thread in threads:
            thread.start()
        try:
            for version in range(2, 8):
                # Let traffic land a few decisions under the current policy
                # before swapping, so reloads genuinely interleave with
                # decisions on any backend speed (sqlite queries are slower
                # than the reload loop).
                with audit_lock:
                    seen = len(audits)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    with audit_lock:
                        if len(audits) >= seen + 4:
                            break
                    time.sleep(0.002)
                policy = truth if version % 2 == 1 else without_v2
                policies[version] = policy
                hot_reload(gateway, policy, version=version)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        gateway.close()
        assert not errors
        assert len(audits) > 20
        checkers = {
            version: ComplianceChecker(db.schema, policy)
            for version, policy in policies.items()
        }
        torn = 0
        for record in audits:
            replica = _TraceReplica()
            replica.apply([("add", fact) for fact in record.facts])
            fresh = checkers[record.policy_version].check(
                db.parse(record.sql), record.bindings, replica
            )
            if fresh.allowed != record.allowed:
                torn += 1
        assert torn == 0


class TestCompiledEpochIsolation:
    """Per-skeleton templates are epoch artifacts: a swap must orphan them."""

    def test_allow_template_does_not_survive_a_narrowing_reload(self, calendar_pair):
        app, db = calendar_pair
        gateway = EnforcementGateway(db, app.ground_truth_policy(), GatewayConfig())
        try:
            connection = gateway.connect(2)
            # Learn the template, then hit it, under v1 (V3 allows this).
            connection.query("SELECT Name FROM Users WHERE UId = 2")
            connection.query("SELECT Name FROM Users WHERE UId = 2")
            assert gateway.snapshot().counters["compiled_templates"] >= 1
            hot_reload(
                gateway, reduced_policy(app.ground_truth_policy(), drop="V3"),
                version=2,
            )
            # The v1 allow template must not answer under v2.
            with pytest.raises(PolicyViolation):
                gateway.connect(3, fresh=True).query(
                    "SELECT Name FROM Users WHERE UId = 3"
                )
        finally:
            gateway.close()

    def test_block_template_does_not_survive_a_widening_reload(self, calendar_pair):
        app, db = calendar_pair
        narrow = reduced_policy(app.ground_truth_policy(), drop="V3")
        gateway = EnforcementGateway(db, narrow, GatewayConfig())
        try:
            with pytest.raises(PolicyViolation):
                gateway.connect(2).query("SELECT Name FROM Users WHERE UId = 2")
            assert gateway.snapshot().counters["compiled_blocks"] >= 1
            hot_reload(gateway, app.ground_truth_policy(), version=2)
            # The v1 Block template is gone; v2's full check allows.
            rows = gateway.connect(3, fresh=True).query(
                "SELECT Name FROM Users WHERE UId = 3"
            )
            assert rows is not None
        finally:
            gateway.close()


class TestLifecycleManager:
    def test_registry_versions_track_epoch_versions(self, calendar_pair, gateway):
        app, _ = calendar_pair
        manager = LifecycleManager(gateway)
        report = manager.reload(reduced_policy(app.ground_truth_policy()))
        assert report.new_version == gateway.policy_version == 2
        assert manager.registry.active_version == 2

    def test_rollback_restores_previous_version(self, calendar_pair, gateway):
        app, db = calendar_pair
        manager = LifecycleManager(gateway)
        manager.reload(reduced_policy(app.ground_truth_policy()), provenance="patched")
        connection = gateway.connect(1)
        connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        with pytest.raises(PolicyViolation):
            connection.query("SELECT * FROM Events WHERE EId = 2")
        report = manager.rollback()
        assert report.new_version == 1
        assert gateway.policy_version == 1
        assert "V2" in gateway.policy
        # The rolled-back policy decides with fresh caches but the kept trace.
        assert len(connection.query("SELECT * FROM Events WHERE EId = 2")) == 1
        assert gateway.metrics.counter("policy_rollbacks") == 1

    def test_rollback_invalidates_caches(self, calendar_pair, gateway):
        app, _ = calendar_pair
        manager = LifecycleManager(gateway)
        gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = 1")
        manager.reload(app.ground_truth_policy())
        gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = 1")
        assert gateway.shared_cache.size == 1
        manager.rollback()
        assert gateway.shared_cache.size == 0

    def test_promote_without_shadow_raises(self, calendar_pair, gateway):
        manager = LifecycleManager(gateway)
        with pytest.raises(LifecycleError):
            manager.promote()
