"""The template-exchange tier: serialization, fencing, and the bus.

These tests run the real bus and real exchange clients against real
in-process gateways (no subprocesses): two gateways over identical
databases join one :class:`TemplateBus`, and we drive sessions against
one gateway and observe the other's shared cache.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.cluster.exchange import (
    TemplateBus,
    TemplateExchangeClient,
    _deserialize_fact,
    _serialize_fact,
    invalidate_event,
    template_event,
)
from repro.enforce.decision import Decision
from repro.enforce.trace import _NULL_PREFIX, is_labeled_null
from repro.lifecycle.reload import hot_reload
from repro.policy import policy_from_text, policy_to_text
from repro.relalg.cq import Atom, Const, Var
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


# --------------------------------------------------------------------------
# Fact serialization
# --------------------------------------------------------------------------


class TestFactSerialization:
    def test_const_fact_roundtrip(self):
        fact = Atom("Attendance", (Const(1), Const("héllo — ünïcode")))
        assert _deserialize_fact(_serialize_fact(fact)) == fact

    def test_labeled_null_roundtrip_preserves_identity(self):
        null_a = Var(f"{_NULL_PREFIX}7")
        null_b = Var(f"{_NULL_PREFIX}8")
        fact = Atom("Events", (null_a, Const(2), null_a, null_b))
        restored = _deserialize_fact(_serialize_fact(fact))
        assert is_labeled_null(restored.args[0])
        assert restored.args[0] == restored.args[2]  # same null, same var
        assert restored.args[0] != restored.args[3]
        assert restored.args[1] == Const(2)

    def test_bool_and_none_consts_survive(self):
        fact = Atom("T", (Const(True), Const(None), Const(0)))
        restored = _deserialize_fact(_serialize_fact(fact))
        assert restored.args[0].value is True
        assert restored.args[1].value is None
        assert restored.args[2].value == 0


# --------------------------------------------------------------------------
# Event construction
# --------------------------------------------------------------------------


def make_gateway(**config) -> EnforcementGateway:
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.make_app().ground_truth_policy()
    return EnforcementGateway(db, policy, GatewayConfig(**config))


class TestEvents:
    def test_template_event_carries_epoch_identity(self):
        gateway = make_gateway()
        decision = Decision(allowed=True, sql="SELECT Title FROM Events WHERE EId = 1", reason="ok")
        event = template_event({"MyUId": 1}, decision, gateway.epoch, shard_id=3)
        assert event["type"] == "TEMPLATE"
        assert event["shard"] == 3
        assert event["policy_version"] == gateway.epoch.version
        assert event["policy_fingerprint"] == gateway.policy.fingerprint()
        gateway.close()

    def test_invalidate_event(self):
        gateway = make_gateway()
        event = invalidate_event(("Events", "Attendance"), gateway.epoch, shard_id=0)
        assert event["type"] == "INVALIDATE"
        assert event["tables"] == ["Events", "Attendance"]
        gateway.close()


# --------------------------------------------------------------------------
# Bus + clients, end to end in one process
# --------------------------------------------------------------------------


class _LoopThread:
    """A bare event loop on a thread, to host the TemplateBus in tests."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result(timeout=30)

    def stop(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        self.loop.close()


@pytest.fixture
def bus_pair():
    """(gateway_a, gateway_b) joined to one bus, with exchange clients."""
    loop = _LoopThread()
    bus = TemplateBus()
    loop.call(bus.start())
    gateway_a = make_gateway()
    gateway_b = make_gateway()
    client_a = TemplateExchangeClient("127.0.0.1", bus.port, gateway_a, shard_id=0)
    client_b = TemplateExchangeClient("127.0.0.1", bus.port, gateway_b, shard_id=1)
    client_a.attach()
    client_b.attach()
    try:
        yield gateway_a, gateway_b, client_a, client_b
    finally:
        client_a.close()
        client_b.close()
        gateway_a.close()
        gateway_b.close()
        loop.call(bus.stop())
        loop.stop()


def _wait_until(predicate, timeout_s=5.0, message="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestExchangeEndToEnd:
    def test_miss_on_one_gateway_becomes_hit_on_the_other(self, bus_pair):
        gateway_a, gateway_b, client_a, client_b = bus_pair
        connection = gateway_a.connect({"MyUId": 1})
        connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        _wait_until(
            lambda: client_b.stats()["templates_applied"] >= 1,
            message="template to cross the bus",
        )
        assert gateway_b.shared_cache is not None
        size_before = gateway_b.shared_cache.size
        assert size_before >= 1
        # The same query on gateway B must now hit without a fresh check.
        peer = gateway_b.connect({"MyUId": 1})
        peer.query("SELECT EId FROM Attendance WHERE UId = 1")
        assert gateway_b.shared_cache.hits >= 1
        assert gateway_b.metrics.counter("exchange_templates_applied") >= 1

    def test_write_invalidation_crosses_the_bus(self, bus_pair):
        gateway_a, gateway_b, client_a, client_b = bus_pair
        # Seed both caches with a template on Attendance.
        gateway_a.connect({"MyUId": 1}).query("SELECT EId FROM Attendance WHERE UId = 1")
        _wait_until(
            lambda: client_b.stats()["templates_applied"] >= 1,
            message="template to cross the bus",
        )
        assert gateway_b.shared_cache.size >= 1
        # A write on gateway A must evict gateway B's templates too
        # (a zero-row DELETE still invalidates by written table).
        gateway_a.connect({"MyUId": 1}).sql("DELETE FROM Attendance WHERE UId = 999")
        _wait_until(
            lambda: client_b.stats()["invalidations_applied"] >= 1,
            message="invalidation to cross the bus",
        )
        assert all(
            "Attendance" not in template.tables
            for template in gateway_b.shared_cache.iter_templates()
        )

    def test_epoch_fencing_drops_cross_version_templates(self, bus_pair):
        gateway_a, gateway_b, client_a, client_b = bus_pair
        # Reload gateway B to a different (but equivalent-text) policy; its
        # version bumps, so A's v1 templates must be fenced at B.
        text = policy_to_text(gateway_b.policy)
        reloaded = policy_from_text(text, gateway_b.db.schema, name="v2")
        hot_reload(gateway_b, reloaded, version=2, provenance="hand-written")
        assert gateway_b.epoch.version == 2
        gateway_a.connect({"MyUId": 1}).query("SELECT EId FROM Attendance WHERE UId = 1")
        _wait_until(
            lambda: client_b.stats()["templates_fenced"] >= 1,
            message="the cross-version template to be fenced",
        )
        assert client_b.stats()["templates_applied"] == 0
        assert gateway_b.shared_cache.size == 0

    def test_no_republish_loop(self, bus_pair):
        """Applying a remote template must not publish it again."""
        gateway_a, gateway_b, client_a, client_b = bus_pair
        gateway_a.connect({"MyUId": 1}).query("SELECT EId FROM Attendance WHERE UId = 1")
        _wait_until(
            lambda: client_b.stats()["templates_applied"] >= 1,
            message="template to cross the bus",
        )
        time.sleep(0.2)  # give any (buggy) echo time to circulate
        assert client_b.stats()["published"] == 0
        assert client_a.stats()["received"] == 0

    def test_close_detaches_observers(self, bus_pair):
        gateway_a, _, client_a, _ = bus_pair
        client_a.close()
        assert gateway_a.template_observer is None
        assert gateway_a.write_observer is None
