"""Merging per-shard STATS documents into one cluster document."""

from __future__ import annotations

from repro.cluster.aggregate import aggregate_stats
from repro.serve.metrics import LatencyHistogram


def _histogram(samples_us) -> LatencyHistogram:
    histogram = LatencyHistogram()
    for micros in samples_us:
        histogram.observe(micros / 1e6)
    return histogram


def _shard_reply(shard_id, counters, stage, policy_version=1, hit_rate=0.5):
    return {
        "type": "STATS",
        "shard_id": shard_id,
        "uptime_s": 10.0 * (shard_id + 1),
        "net": {
            "counters": {"requests": 100 * (shard_id + 1)},
            "stages": {"net_request": stage},
            "active_connections": 2,
            "in_flight": 1,
        },
        "gateway": {
            "counters": counters,
            "view_checks": {"OwnEvents": 3},
            "stages": {"check": stage},
        },
        "cache_hit_rate": hit_rate,
        "policy": {"active_version": policy_version},
    }


class TestAggregateStats:
    def test_counters_sum_and_gauges_sum(self):
        replies = [
            _shard_reply(0, {"decisions_allowed": 10}, _histogram([100]).to_stage_wire()),
            _shard_reply(1, {"decisions_allowed": 5}, _histogram([200]).to_stage_wire()),
        ]
        merged = aggregate_stats(replies)
        assert merged["gateway"]["counters"]["decisions_allowed"] == 15
        assert merged["gateway"]["view_checks"]["OwnEvents"] == 6
        assert merged["net"]["counters"]["requests"] == 300
        assert merged["net"]["active_connections"] == 4
        assert merged["net"]["in_flight"] == 2
        assert merged["cluster"]["shard_count"] == 2
        assert [s["shard_id"] for s in merged["cluster"]["shards"]] == [0, 1]

    def test_histograms_merge_exactly_not_by_averaging(self):
        """The merged stage must equal a direct merge of the histograms."""
        left = _histogram([10, 20, 5000])
        right = _histogram([1, 1, 1, 400_000])
        replies = [
            _shard_reply(0, {}, left.to_stage_wire()),
            _shard_reply(1, {}, right.to_stage_wire()),
        ]
        merged = aggregate_stats(replies)["gateway"]["stages"]["check"]
        direct = _histogram([10, 20, 5000, 1, 1, 1, 400_000])
        expected = direct.to_stage_wire()
        assert merged["buckets"] == expected["buckets"]
        assert merged["count"] == expected["count"]
        assert merged["p99_us"] == expected["p99_us"]
        assert merged["max_us"] == expected["max_us"]

    def test_pre_bucket_documents_degrade_to_weighted_summary(self):
        old_style = {"count": 10, "mean_us": 100.0, "p99_us": 500.0, "max_us": 600.0}
        replies = [
            _shard_reply(0, {}, old_style),
            _shard_reply(1, {}, {"count": 30, "mean_us": 200.0, "p99_us": 900.0, "max_us": 1000.0}),
        ]
        merged = aggregate_stats(replies)["gateway"]["stages"]["check"]
        assert merged["approximate"] is True
        assert merged["count"] == 40
        assert merged["mean_us"] == (10 * 100.0 + 30 * 200.0) / 40
        assert merged["p99_us"] == 900.0

    def test_hit_rate_recomputed_from_summed_counters(self):
        """A busy shard must outweigh an idle one (no rate averaging)."""
        stage = _histogram([10]).to_stage_wire()
        replies = [
            _shard_reply(
                0,
                {"shared_cache_hits": 99, "shared_cache_misses": 1, "shared_cache_hit_rate": 0.99},
                stage,
                hit_rate=0.99,
            ),
            _shard_reply(
                1,
                {"shared_cache_hits": 0, "shared_cache_misses": 0, "shared_cache_hit_rate": 0.0},
                stage,
                hit_rate=0.0,
            ),
        ]
        merged = aggregate_stats(replies)
        assert merged["cache_hit_rate"] == 0.99
        assert merged["gateway"]["counters"]["shared_cache_hit_rate"] == 0.99

    def test_policy_version_consensus_and_divergence(self):
        stage = _histogram([10]).to_stage_wire()
        same = aggregate_stats(
            [_shard_reply(0, {}, stage), _shard_reply(1, {}, stage)]
        )
        assert same["policy"] == {"active_versions": [1], "consistent": True}
        split = aggregate_stats(
            [
                _shard_reply(0, {}, stage, policy_version=2),
                _shard_reply(1, {}, stage, policy_version=1),
            ]
        )
        assert split["policy"] == {"active_versions": [1, 2], "consistent": False}

    def test_policy_version_counter_not_summed(self):
        stage = _histogram([10]).to_stage_wire()
        merged = aggregate_stats(
            [
                _shard_reply(0, {"policy_version": 1}, stage),
                _shard_reply(1, {"policy_version": 1}, stage),
            ]
        )
        assert "policy_version" not in merged["gateway"]["counters"]

    def test_empty_fleet(self):
        merged = aggregate_stats([])
        assert merged["cache_hit_rate"] == 0.0
        assert merged["cluster"]["shard_count"] == 0
