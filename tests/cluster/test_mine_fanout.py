"""MINE through the router: fan-out, reconciliation, approve tolerance.

Each shard mines its own audit window, so the router merges candidate
lists by content fingerprint and tolerates per-shard approve failures
(a fingerprint mined on one shard may be unknown on another).
"""

from __future__ import annotations

import pytest

from repro.lifecycle import GateConfig, LifecycleManager
from repro.mining import MiningConfig
from repro.net import AdminClient, BackgroundServer, NetClientConnection, ServerConfig
from repro.policy import policy_to_text
from repro.policy.policy import Policy
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app

from tests.cluster.test_router import _BackgroundRouter


def make_mining_gateway() -> EnforcementGateway:
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.make_app().ground_truth_policy()
    return EnforcementGateway(
        db,
        policy,
        GatewayConfig(mining=MiningConfig(min_window=4, mode="propose_only")),
    )


@pytest.fixture
def mining_cluster():
    gateways = [make_mining_gateway(), make_mining_gateway()]
    lifecycles = [
        LifecycleManager(gateway, gates=GateConfig(min_shadow_checks=3))
        for gateway in gateways
    ]
    servers = [
        BackgroundServer(
            gateway, ServerConfig(port=0, shard_id=index), lifecycle=lifecycle
        ).start()
        for index, (gateway, lifecycle) in enumerate(zip(gateways, lifecycles))
    ]
    router = _BackgroundRouter(
        [server.port for server in servers],
        health_interval_s=0.1,
        health_failures=2,
        connect_timeout_s=2.0,
    )
    try:
        yield router, servers, gateways
    finally:
        router.stop()
        for server in servers:
            server.stop()
        for lifecycle in lifecycles:
            lifecycle.mining.close()
        for gateway in gateways:
            gateway.close()


def drive_gap_traffic(server, include_gap_query: bool = True):
    """v1 traffic straight at one shard (bypassing the session router)."""
    session = NetClientConnection(server.host, server.port, bindings={"MyUId": 1})
    for eid in range(1, 6):
        session.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
    if include_gap_query:
        session.query("SELECT * FROM Events WHERE EId = 2")
    return session


def reduced_text() -> str:
    full = calendar_app.ground_truth_policy()
    return policy_to_text(
        Policy([v for v in full.views if v.name != "V2"], name="minus-V2")
    )


class TestCandidateReconciliation:
    def test_same_gap_on_both_shards_merges_to_one_candidate(self, mining_cluster):
        router, servers, _ = mining_cluster
        sessions = [drive_gap_traffic(server) for server in servers]
        with AdminClient("127.0.0.1", router.port, timeout_s=60.0) as fleet:
            fleet.reload(reduced_text(), label="gapped")
            for session in sessions:
                for eid in range(1, 4):
                    session.query(
                        f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                    )
            cycle = fleet.mine_run()  # fans out: one cycle per shard
            assert len(cycle["mined"]) == 1
            listing = fleet.mine_candidates()
        for session in sessions:
            session.close()
        # Identical traffic shapes mine content-identical candidates, so
        # the fleet view is one merged entry with two shard rows.
        (candidate,) = listing["candidates"]
        assert candidate["kind"] == "gap-fill"
        assert [row["shard"] for row in candidate["shards"]] == [0, 1]
        supports = {row["support"] for row in candidate["shards"]}
        assert candidate["support"] == max(supports)

    def test_status_fans_out_per_shard(self, mining_cluster):
        router, _, _ = mining_cluster
        with AdminClient("127.0.0.1", router.port, timeout_s=60.0) as fleet:
            reply = fleet._call({"type": "MINE", "action": "status"})
        assert reply["mining"]["mode"] == "propose_only"
        assert [row["shard"] for row in reply["shards"]] == [0, 1]


class TestApproveTolerance:
    def test_fingerprint_known_to_one_shard_still_approves(self, mining_cluster):
        router, servers, gateways = mining_cluster
        # Only shard 0 sees the V2-justified read, so only shard 0 mines
        # the gap-fill candidate.
        sessions = [
            drive_gap_traffic(server, include_gap_query=(index == 0))
            for index, server in enumerate(servers)
        ]
        with AdminClient("127.0.0.1", router.port, timeout_s=60.0) as fleet:
            fleet.reload(reduced_text(), label="gapped")
            for session in sessions:
                for eid in range(1, 4):
                    session.query(
                        f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                    )
            fleet.mine_run()
            (candidate,) = fleet.mine_candidates()["candidates"]
            assert [row["shard"] for row in candidate["shards"]] == [0]
            reply = fleet._call(
                {
                    "type": "MINE",
                    "action": "approve",
                    "fingerprint": candidate["fingerprint"],
                }
            )
        for session in sessions:
            session.close()
        # Shard 0 approved (candidate now shadowing); shard 1's "no such
        # candidate" error is recorded, not fatal.
        assert reply["candidate"]["status"] == "shadowing"
        rows = {row["shard"]: row for row in reply["shards"]}
        assert "reply" in rows[0]
        assert "no mined candidate" in rows[1]["error"]
        assert gateways[0].shadow is not None
        assert gateways[1].shadow is None
