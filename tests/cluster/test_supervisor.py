"""BackgroundCluster: real shard subprocesses behind a real router.

Kept deliberately small (tiny database, two shards) — the heavy cluster
experiments live in benchmarks/bench_e16_cluster.py.
"""

from __future__ import annotations

import json

from repro.cluster import BackgroundCluster, ClusterConfig, shard_index_for
from repro.net import AdminClient, NetClientConnection


class TestBackgroundCluster:
    def test_two_shard_cluster_serves_and_aggregates(self, tmp_path):
        config = ClusterConfig(
            app="calendar", shards=2, size=8, audit_dir=str(tmp_path)
        )
        with BackgroundCluster(config) as cluster:
            # Sessions land on the shard the hash predicts, end to end
            # through subprocess boundaries.
            for uid in (1, 2, 3):
                connection = NetClientConnection("127.0.0.1", cluster.port, user=uid)
                assert connection.server_shard_id == shard_index_for(
                    {"MyUId": uid}, 2
                )
                result = connection.query(
                    "SELECT EId FROM Attendance WHERE UId = ?", [uid]
                )
                assert result.columns == ["EId"]
                connection.close()

            admin = AdminClient("127.0.0.1", cluster.port)
            stats = admin.stats()
            admin.close()
            assert stats["cluster"]["shard_count"] == 2
            assert stats["policy"]["consistent"] is True
            assert stats["gateway"]["counters"]["decisions_allowed"] >= 3

            audit_paths = cluster.audit_paths()
            assert len(audit_paths) == 2

        # After shutdown the audit logs are complete, parseable JSONL,
        # and every decision is stamped with its shard.
        records = []
        for path in audit_paths:
            with open(path, encoding="utf-8") as handle:
                records.extend(json.loads(line) for line in handle if line.strip())
        assert len(records) >= 3
        assert {record["shard"] for record in records} <= {0, 1}
        assert all(record["allowed"] is True for record in records)

    def test_shared_db_path_serves_one_sqlite_file(self, tmp_path):
        shared = str(tmp_path / "fleet.db")
        config = ClusterConfig(
            app="calendar", shards=2, size=8, shared_db_path=shared
        )
        with BackgroundCluster(config) as cluster:
            for uid in (1, 2):
                connection = NetClientConnection("127.0.0.1", cluster.port, user=uid)
                result = connection.query(
                    "SELECT EId FROM Attendance WHERE UId = ?", [uid]
                )
                assert result.columns == ["EId"]
                connection.close()
            admin = AdminClient("127.0.0.1", cluster.port)
            stats = admin.stats()
            admin.close()
        # Both shards opened the pre-seeded file (WAL sidecars prove the
        # journal mode; the supervisor seeded it exactly once).
        import sqlite3

        conn = sqlite3.connect(shared)
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        rows = conn.execute("SELECT COUNT(*) FROM Users").fetchone()[0]
        conn.close()
        assert rows > 0
        assert stats["cluster"]["shard_count"] == 2

    def test_shared_db_path_conflicts_are_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="mutually exclusive"):
            ClusterConfig(
                app="calendar",
                shared_db_path=str(tmp_path / "a.db"),
                db_path=str(tmp_path / "b.db"),
            )
        with pytest.raises(ValueError, match="sqlite"):
            ClusterConfig(
                app="calendar",
                shared_db_path=str(tmp_path / "a.db"),
                backend="memory",
            )
