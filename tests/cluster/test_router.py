"""The cluster router over real in-process shard servers.

No subprocesses here: each "shard" is a :class:`BackgroundServer` on its
own loop thread, and the router runs on a third loop thread — the full
wire path (client → router → shard) over loopback TCP.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.cluster.router import ClusterRouter, RouterConfig, shard_index_for
from repro.lifecycle import LifecycleManager
from repro.net import (
    AdminClient,
    BackgroundServer,
    NetClientConnection,
    NetError,
    ServerConfig,
    protocol,
)
from repro.policy import policy_to_text
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


def make_gateway(**config) -> EnforcementGateway:
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.make_app().ground_truth_policy()
    return EnforcementGateway(db, policy, GatewayConfig(**config))


class TestShardIndexFor:
    def test_deterministic_and_in_range(self):
        for count in (1, 2, 4, 7):
            for uid in range(20):
                index = shard_index_for({"MyUId": uid}, count)
                assert 0 <= index < count
                assert index == shard_index_for({"MyUId": uid}, count)

    def test_key_order_does_not_matter(self):
        left = shard_index_for({"A": 1, "B": 2}, 8)
        right = shard_index_for({"B": 2, "A": 1}, 8)
        assert left == right

    def test_spreads_principals(self):
        homes = {shard_index_for({"MyUId": uid}, 4) for uid in range(50)}
        assert homes == {0, 1, 2, 3}

    def test_single_shard_short_circuit(self):
        assert shard_index_for({"MyUId": 123}, 1) == 0


class _BackgroundRouter:
    """A ClusterRouter on its own loop thread (test-side supervisor)."""

    def __init__(self, shard_ports, **config_kwargs):
        self.router = ClusterRouter(
            [("127.0.0.1", port) for port in shard_ports],
            RouterConfig(**config_kwargs),
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._call(self.router.start())
        self.port = self.router.port

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(timeout=60)

    def stop(self):
        self._call(self.router.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()


@pytest.fixture
def two_shards():
    """Two shard servers + a router, all in-process."""
    gateways = [make_gateway(), make_gateway()]
    servers = [
        BackgroundServer(
            gateway,
            ServerConfig(port=0, shard_id=index),
            lifecycle=LifecycleManager(gateway),
        ).start()
        for index, gateway in enumerate(gateways)
    ]
    router = _BackgroundRouter(
        [server.port for server in servers],
        health_interval_s=0.1,
        health_failures=2,
        connect_timeout_s=2.0,
    )
    try:
        yield router, servers, gateways
    finally:
        router.stop()
        for server in servers:
            server.stop()
        for gateway in gateways:
            gateway.close()


class TestRouting:
    def test_session_lands_on_its_hashed_shard(self, two_shards):
        router, servers, _ = two_shards
        for uid in range(6):
            expected = shard_index_for({"MyUId": uid}, 2)
            connection = NetClientConnection("127.0.0.1", router.port, user=uid)
            assert connection.server_shard_id == expected
            result = connection.query(
                "SELECT EId FROM Attendance WHERE UId = ?", [uid]
            )
            assert result.columns == ["EId"]
            connection.close()
        assert router.router.counters["sessions_routed"] == 6

    def test_same_principal_resumes_same_shard_session(self, two_shards):
        router, _, gateways = two_shards
        first = NetClientConnection("127.0.0.1", router.port, user=1)
        first.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        first.query("SELECT * FROM Events WHERE EId = 2")  # needs the trace
        first.close()
        # Reconnecting as the same principal must resume the same trace
        # (the shard keeps sessions keyed by bindings).
        second = NetClientConnection("127.0.0.1", router.port, user=1)
        second.query("SELECT * FROM Events WHERE EId = 2")
        second.close()

    def test_ping_answered_by_router(self, two_shards):
        router, servers, _ = two_shards
        connection = NetClientConnection("127.0.0.1", router.port, user=1)
        assert connection.ping() < 5.0
        connection.close()

    def test_pre_session_query_is_rejected(self, two_shards):
        router, _, _ = two_shards
        import socket

        sock = socket.create_connection(("127.0.0.1", router.port), timeout=5)
        try:
            protocol.write_frame(
                sock, {"type": protocol.QUERY, "id": 1, "sql": "SELECT 1"}
            )
            reply = protocol.read_frame(sock)
            assert reply["type"] == protocol.ERROR
            assert reply["code"] == protocol.ERR_UNAUTHENTICATED
        finally:
            sock.close()


class TestAggregatedStats:
    def test_stats_merge_across_shards(self, two_shards):
        router, _, _ = two_shards
        uids = [1, 2, 3, 4]
        for uid in uids:
            connection = NetClientConnection("127.0.0.1", router.port, user=uid)
            connection.query("SELECT EId FROM Attendance WHERE UId = ?", [uid])
            connection.close()
        admin = AdminClient("127.0.0.1", router.port)
        stats = admin.stats()
        admin.close()
        assert stats["cluster"]["shard_count"] == 2
        assert stats["gateway"]["counters"]["decisions_allowed"] == len(uids)
        assert stats["policy"]["consistent"] is True
        assert stats["router"]["counters"]["sessions_routed"] == len(uids)
        # Both shards contributed histograms (every shard served someone
        # only if the uids spread; assert on the merged check stage).
        assert stats["gateway"]["stages"]["check"]["count"] >= len(uids)


class TestRollingAdmin:
    def test_reload_rolls_across_every_shard(self, two_shards):
        router, _, gateways = two_shards
        text = policy_to_text(gateways[0].policy)
        admin = AdminClient("127.0.0.1", router.port)
        report = admin.reload(text, provenance="hand-written", label="cluster-v2")
        admin.close()
        # AdminClient-compatible report, plus every shard really moved.
        assert report["new_version"] == 2
        assert all(gateway.policy_version == 2 for gateway in gateways)

    def test_policy_status_through_router(self, two_shards):
        router, _, _ = two_shards
        admin = AdminClient("127.0.0.1", router.port)
        status = admin.policy_status()
        admin.close()
        assert status["active_version"] == 1


class TestDegradation:
    def test_down_shard_sheds_only_its_sessions(self, two_shards):
        router, servers, _ = two_shards
        # Find principals homed on each shard.
        on_zero = next(u for u in range(50) if shard_index_for({"MyUId": u}, 2) == 0)
        on_one = next(u for u in range(50) if shard_index_for({"MyUId": u}, 2) == 1)
        servers[1].stop()
        # Wait for the health loop to notice (interval 0.1s, 2 failures;
        # each failed probe may take up to connect_timeout_s, so the
        # deadline must comfortably exceed 2x that).
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if not router.router._shards[1].healthy:
                break
            time.sleep(0.05)
        assert not router.router._shards[1].healthy
        # Shard 1's principals are shed with the stable error code...
        with pytest.raises(NetError) as excinfo:
            NetClientConnection("127.0.0.1", router.port, user=on_one)
        assert excinfo.value.code == protocol.ERR_UNAVAILABLE
        # ...while shard 0's principals keep working.
        connection = NetClientConnection("127.0.0.1", router.port, user=on_zero)
        connection.query("SELECT EId FROM Attendance WHERE UId = ?", [on_zero])
        connection.close()
        assert router.router.counters["sessions_shed"] >= 1
