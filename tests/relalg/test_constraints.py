"""Constraint-closure tests: consistency and implication."""

from repro.relalg.constraints import ConstraintSet
from repro.relalg.cq import Comp, Const, Param, Var

x, y, z = Var("x"), Var("y"), Var("z")


def cs(*comps):
    return ConstraintSet(comps)


class TestConsistency:
    def test_empty_is_consistent(self):
        assert cs().consistent()

    def test_equal_distinct_constants_inconsistent(self):
        assert not cs(Comp("=", x, Const(1)), Comp("=", x, Const(2))).consistent()

    def test_neq_same_var_inconsistent(self):
        assert not cs(Comp("!=", x, x)).consistent()

    def test_neq_through_equality_inconsistent(self):
        assert not cs(Comp("=", x, y), Comp("!=", x, y)).consistent()

    def test_strict_cycle_inconsistent(self):
        assert not cs(Comp("<", x, y), Comp("<=", y, x)).consistent()

    def test_nonstrict_cycle_consistent(self):
        assert cs(Comp("<=", x, y), Comp("<=", y, x)).consistent()

    def test_constant_violation_inconsistent(self):
        assert not cs(Comp("<", Const(5), Const(3))).consistent()

    def test_const_sandwich_inconsistent(self):
        assert not cs(
            Comp("<=", Const(5), x), Comp("<", x, Const(5))
        ).consistent()

    def test_order_on_null_inconsistent(self):
        assert not cs(Comp("<", x, Const(None))).consistent()

    def test_null_equality_consistent(self):
        assert cs(Comp("=", x, Const(None))).consistent()

    def test_two_params_may_be_equal(self):
        assert cs(Comp("=", Param("A"), Param("B"))).consistent()


class TestEquality:
    def test_transitive_equality(self):
        closure = cs(Comp("=", x, y), Comp("=", y, z))
        assert closure.equal(x, z)

    def test_var_pinned_to_constant(self):
        closure = cs(Comp("=", x, Const(3)))
        assert closure.equal(x, Const(3))
        assert closure.canon(x) == Const(3)

    def test_sandwich_equality(self):
        closure = cs(Comp("<=", x, y), Comp("<=", y, x))
        assert closure.equal(x, y)

    def test_params_never_provably_equal(self):
        closure = cs()
        assert not closure.equal(Param("A"), Param("B"))

    def test_same_param_equal(self):
        assert cs().equal(Param("A"), Param("A"))


class TestOrderImplication:
    def test_direct(self):
        assert cs(Comp("<", x, y)).implies(Comp("<", x, y))

    def test_strict_implies_nonstrict(self):
        assert cs(Comp("<", x, y)).implies(Comp("<=", x, y))

    def test_nonstrict_does_not_imply_strict(self):
        assert not cs(Comp("<=", x, y)).implies(Comp("<", x, y))

    def test_transitive_with_strictness(self):
        closure = cs(Comp("<=", x, y), Comp("<", y, z))
        assert closure.implies(Comp("<", x, z))

    def test_through_constants(self):
        closure = cs(Comp("<=", x, Const(3)), Comp("<=", Const(5), y))
        assert closure.implies(Comp("<", x, y))

    def test_external_constant_lower_bound(self):
        # 60 <= x implies 18 <= x even though 18 is not in the set.
        closure = cs(Comp("<=", Const(60), x))
        assert closure.implies(Comp("<=", Const(18), x))
        assert closure.implies(Comp("<", Const(18), x))

    def test_external_constant_upper_bound(self):
        closure = cs(Comp("<=", x, Const(10)))
        assert closure.implies(Comp("<", x, Const(99)))

    def test_unrelated_not_implied(self):
        assert not cs(Comp("<", x, y)).implies(Comp("<", y, x))

    def test_neq_from_strict_order(self):
        assert cs(Comp("<", x, y)).implies(Comp("!=", x, y))

    def test_neq_from_distinct_constants(self):
        closure = cs(Comp("=", x, Const(1)), Comp("=", y, Const(2)))
        assert closure.implies(Comp("!=", x, y))

    def test_inconsistent_implies_everything(self):
        closure = cs(Comp("<", x, x))
        assert closure.implies(Comp("=", x, y))


class TestStringConstants:
    def test_string_equality(self):
        closure = cs(Comp("=", x, Const("abc")))
        assert closure.equal(x, Const("abc"))

    def test_string_order(self):
        closure = cs(Comp("<=", Const("b"), x))
        assert closure.implies(Comp("<", Const("a"), x))

    def test_mixed_type_constants_not_comparable(self):
        closure = cs(Comp("=", x, Const("a")), Comp("=", y, Const(1)))
        assert closure.implies(Comp("!=", x, y))
