"""Rewriting-engine tests: equivalent, contained, and partial rewritings."""

from repro.relalg.containment import cq_contained_in
from repro.relalg.cq import Atom, CQ, Const, Var
from repro.relalg.rewrite import (
    ViewDef,
    enumerate_rewritings,
    find_equivalent_rewriting,
    maximally_contained_rewritings,
)
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select


def tr1(sql, schema, name=None):
    return translate_select(parse_select(sql), schema, name).disjuncts[0]


def calendar_views(dict_schema, uid=1):
    v1 = tr1(
        "SELECT EId FROM Attendance WHERE UId = ?MyUId", dict_schema, "V1"
    ).instantiate({"MyUId": uid})
    v2 = tr1(
        "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId"
        " WHERE a.UId = ?MyUId",
        dict_schema,
        "V2",
    ).instantiate({"MyUId": uid})
    return [ViewDef("V1", v1), ViewDef("V2", v2)]


class TestEquivalentRewriting:
    def test_identity_view(self, dict_schema):
        view = ViewDef("V", tr1("SELECT a, b FROM R", dict_schema))
        query = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        rewriting = find_equivalent_rewriting(query, [view])
        assert rewriting is not None
        assert rewriting.atoms[0].rel == "V"

    def test_example_2_1_q1_allowed(self, dict_schema):
        views = calendar_views(dict_schema)
        q1 = tr1("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2", dict_schema)
        assert find_equivalent_rewriting(q1, views) is not None

    def test_example_2_1_q2_blocked_without_history(self, dict_schema):
        views = calendar_views(dict_schema)
        q2 = tr1("SELECT * FROM Events WHERE EId = 2", dict_schema)
        assert find_equivalent_rewriting(q2, views) is None

    def test_example_2_1_q2_allowed_with_fact(self, dict_schema):
        views = calendar_views(dict_schema)
        q2 = tr1("SELECT * FROM Events WHERE EId = 2", dict_schema)
        fact = Atom("Attendance", (Const(1), Const(2)))
        augmented = CQ(
            head=q2.head,
            body=q2.body + (fact,),
            comps=q2.comps,
            head_names=q2.head_names,
        )
        rewriting = find_equivalent_rewriting(augmented, views, facts=[fact])
        assert rewriting is not None

    def test_projection_through_view(self, dict_schema):
        # A view exposing more columns than the query needs still covers it.
        view = ViewDef("V", tr1("SELECT EId, Title, Time, Loc FROM Events", dict_schema))
        query = tr1("SELECT Title FROM Events", dict_schema)
        assert find_equivalent_rewriting(query, [view]) is not None

    def test_view_comp_enforces_predicate_without_exposure(self, dict_schema):
        # Vseniors doesn't expose Age, yet covers the Age >= 60 query.
        view = ViewDef(
            "Vseniors", tr1("SELECT Name FROM Employees WHERE Age >= 60", dict_schema)
        )
        query = tr1("SELECT Name FROM Employees WHERE Age >= 60", dict_schema)
        assert find_equivalent_rewriting(query, [view]) is not None

    def test_weaker_view_comp_insufficient(self, dict_schema):
        view = ViewDef(
            "Vadults", tr1("SELECT Name FROM Employees WHERE Age >= 18", dict_schema)
        )
        query = tr1("SELECT Name FROM Employees WHERE Age >= 60", dict_schema)
        assert find_equivalent_rewriting(query, [view]) is None

    def test_hidden_column_blocks(self, dict_schema):
        view = ViewDef("Vdir", tr1("SELECT EId, Name, Dept FROM Employees", dict_schema))
        query = tr1("SELECT Salary FROM Employees", dict_schema)
        assert find_equivalent_rewriting(query, [view]) is None

    def test_join_of_two_views(self, dict_schema):
        va = ViewDef("VA", tr1("SELECT a, b FROM R", dict_schema))
        vb = ViewDef("VB", tr1("SELECT b, c FROM S", dict_schema))
        query = tr1("SELECT R.a, S.c FROM R JOIN S ON R.b = S.b", dict_schema)
        rewriting = find_equivalent_rewriting(query, [va, vb])
        assert rewriting is not None
        assert {atom.rel for atom in rewriting.atoms} == {"VA", "VB"}


class TestContainedRewriting:
    def test_narrowing_found(self, dict_schema):
        views = calendar_views(dict_schema)
        query = tr1("SELECT * FROM Events WHERE EId = 2", dict_schema)
        rewritings = maximally_contained_rewritings(query, views)
        assert rewritings
        for rewriting in rewritings:
            assert cq_contained_in(rewriting.expansion, query)

    def test_no_rewriting_for_untouched_relation(self, dict_schema):
        views = [ViewDef("V", tr1("SELECT a, b FROM R", dict_schema))]
        query = tr1("SELECT x FROM T", dict_schema)
        assert maximally_contained_rewritings(query, views) == []

    def test_maximality_pruning(self, dict_schema):
        # Both a broad and a narrow view apply; only the broad one's
        # rewriting should survive pruning.
        broad = ViewDef("VB", tr1("SELECT a, b FROM R", dict_schema))
        narrow = ViewDef("VN", tr1("SELECT a, b FROM R WHERE b = 3", dict_schema))
        query = tr1("SELECT a FROM R", dict_schema)
        rewritings = maximally_contained_rewritings(query, [broad, narrow])
        assert len(rewritings) == 1
        assert rewritings[0].atoms[0].rel == "VB"


class TestPartialRewriting:
    def test_partial_skips_uncoverable_subgoal(self, dict_schema):
        # Upper bound on a join where only one side has a view.
        view = ViewDef("V", tr1("SELECT a, b FROM R", dict_schema))
        query = tr1("SELECT R.a FROM R JOIN S ON R.b = S.b", dict_schema)
        candidates = list(
            enumerate_rewritings(query, [view], allow_partial=True)
        )
        assert candidates
        assert any(
            cq_contained_in(query, c.expansion) for c in candidates
        )

    def test_full_cover_returns_nothing_when_gap(self, dict_schema):
        view = ViewDef("V", tr1("SELECT a, b FROM R", dict_schema))
        query = tr1("SELECT R.a FROM R JOIN S ON R.b = S.b", dict_schema)
        assert list(enumerate_rewritings(query, [view])) == []

    def test_candidate_cap_respected(self, dict_schema):
        views = [
            ViewDef(f"V{i}", tr1("SELECT a, b FROM R", dict_schema)) for i in range(6)
        ]
        query = tr1("SELECT a FROM R", dict_schema)
        candidates = list(enumerate_rewritings(query, views, max_candidates=3))
        assert len(candidates) <= 3
