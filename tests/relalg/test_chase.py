"""Bounded-chase tests."""

from repro.relalg.chase import TGD, chase
from repro.relalg.cq import CQ, Atom, Const, Var


def hospital_tgd():
    return TGD(
        body=(Atom("PatientConditions", (Var("p"), Var("d"))),),
        head=(
            Atom("Patients", (Var("p"), Var("n"), Var("doc"))),
            Atom("DoctorDiseases", (Var("doc"), Var("d"))),
        ),
        name="treated-by-assigned-doctor",
    )


class TestChase:
    def test_adds_implied_atoms(self):
        query = CQ(
            head=(Var("d"),),
            body=(Atom("PatientConditions", (Const(1), Var("d"))),),
        )
        chased = chase(query, [hospital_tgd()])
        relations = [a.rel for a in chased.body]
        assert "Patients" in relations
        assert "DoctorDiseases" in relations

    def test_existentials_are_fresh(self):
        query = CQ(
            head=(Var("d"),),
            body=(Atom("PatientConditions", (Const(1), Var("d"))),),
        )
        chased = chase(query, [hospital_tgd()])
        patients = next(a for a in chased.body if a.rel == "Patients")
        # p is the frontier constant; n and doc are fresh variables.
        assert patients.args[0] == Const(1)
        assert isinstance(patients.args[1], Var)
        assert isinstance(patients.args[2], Var)

    def test_idempotent_when_head_present(self):
        tgd = hospital_tgd()
        query = CQ(
            head=(Var("d"),),
            body=(Atom("PatientConditions", (Const(1), Var("d"))),),
        )
        once = chase(query, [tgd])
        twice = chase(once, [tgd])
        assert len(twice.body) == len(once.body)

    def test_no_match_no_change(self):
        query = CQ(head=(Var("x"),), body=(Atom("Other", (Var("x"),)),))
        chased = chase(query, [hospital_tgd()])
        assert chased.body == query.body

    def test_step_bound_respected(self):
        # A self-feeding TGD would chase forever; the bound stops it.
        growing = TGD(
            body=(Atom("E", (Var("x"), Var("y"))),),
            head=(Atom("E", (Var("y"), Var("z"))),),
        )
        query = CQ(head=(), body=(Atom("E", (Const(0), Const(1))),))
        chased = chase(query, [growing], max_steps=5)
        assert len(chased.body) <= 7

    def test_multiple_frontier_matches(self):
        tgd = hospital_tgd()
        query = CQ(
            head=(),
            body=(
                Atom("PatientConditions", (Const(1), Const("flu"))),
                Atom("PatientConditions", (Const(2), Const("tb"))),
            ),
        )
        chased = chase(query, [tgd])
        patients = [a for a in chased.body if a.rel == "Patients"]
        assert len(patients) == 2
