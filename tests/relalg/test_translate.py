"""SQL → CQ translation tests."""

import pytest

from repro.relalg.cq import Comp, Const, Param, Var
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select
from repro.util.errors import TranslationError


def tr(sql, schema):
    return translate_select(parse_select(sql), schema)


class TestBasics:
    def test_single_table(self, dict_schema):
        ucq = tr("SELECT a FROM R", dict_schema)
        assert len(ucq.disjuncts) == 1
        cq = ucq.disjuncts[0]
        assert cq.head == (Var("R.a"),)
        assert cq.body[0].rel == "R"
        assert cq.head_names == ("a",)

    def test_star_expansion(self, dict_schema):
        cq = tr("SELECT * FROM Events", dict_schema).disjuncts[0]
        assert len(cq.head) == 4
        assert cq.head_names == ("EId", "Title", "Time", "Loc")

    def test_join_condition_becomes_comp(self, dict_schema):
        cq = tr(
            "SELECT 1 FROM Events e JOIN Attendance a ON e.EId = a.EId",
            dict_schema,
        ).disjuncts[0]
        assert Comp("=", Var("e.EId"), Var("a.EId")) in cq.comps

    def test_constant_in_select_list(self, dict_schema):
        cq = tr("SELECT 1 FROM R", dict_schema).disjuncts[0]
        assert cq.head == (Const(1),)

    def test_named_param_becomes_param_term(self, dict_schema):
        cq = tr("SELECT a FROM R WHERE b = ?MyUId", dict_schema).disjuncts[0]
        assert Comp("=", Var("R.b"), Param("MyUId")) in cq.comps

    def test_positional_param_label(self, dict_schema):
        cq = tr("SELECT a FROM R WHERE b = ?", dict_schema).disjuncts[0]
        assert Comp("=", Var("R.b"), Param("$0")) in cq.comps

    def test_unqualified_ambiguous_column_rejected(self, dict_schema):
        with pytest.raises(TranslationError):
            tr("SELECT b FROM R, S", dict_schema)

    def test_unknown_table_rejected(self, dict_schema):
        with pytest.raises(TranslationError):
            tr("SELECT a FROM Nope", dict_schema)

    def test_unknown_column_rejected(self, dict_schema):
        with pytest.raises(TranslationError):
            tr("SELECT zz FROM R", dict_schema)


class TestPredicates:
    def test_comparison_normalization(self, dict_schema):
        cq = tr("SELECT a FROM R WHERE a > 5", dict_schema).disjuncts[0]
        assert Comp("<", Const(5), Var("R.a")) in cq.comps

    def test_or_produces_ucq(self, dict_schema):
        ucq = tr("SELECT a FROM R WHERE a = 1 OR a = 2", dict_schema)
        assert len(ucq.disjuncts) == 2

    def test_in_list_produces_ucq(self, dict_schema):
        ucq = tr("SELECT a FROM R WHERE a IN (1, 2, 3)", dict_schema)
        assert len(ucq.disjuncts) == 3

    def test_not_in_stays_single(self, dict_schema):
        ucq = tr("SELECT a FROM R WHERE a NOT IN (1, 2)", dict_schema)
        assert len(ucq.disjuncts) == 1
        comps = ucq.disjuncts[0].comps
        assert Comp("!=", Var("R.a"), Const(1)) in comps
        assert Comp("!=", Var("R.a"), Const(2)) in comps

    def test_is_null(self, dict_schema):
        cq = tr("SELECT a FROM R WHERE b IS NULL", dict_schema).disjuncts[0]
        assert Comp("=", Var("R.b"), Const(None)) in cq.comps

    def test_not_pushed_through_and(self, dict_schema):
        ucq = tr("SELECT a FROM R WHERE NOT (a = 1 AND b = 2)", dict_schema)
        assert len(ucq.disjuncts) == 2

    def test_distributed_and_over_or(self, dict_schema):
        ucq = tr(
            "SELECT a FROM R WHERE (a = 1 OR a = 2) AND (b = 3 OR b = 4)",
            dict_schema,
        )
        assert len(ucq.disjuncts) == 4

    def test_order_by_and_limit_dropped(self, dict_schema):
        ucq = tr("SELECT a FROM R ORDER BY a LIMIT 5", dict_schema)
        assert len(ucq.disjuncts) == 1


class TestRejections:
    def test_left_join_rejected(self, dict_schema):
        with pytest.raises(TranslationError):
            tr("SELECT 1 FROM R LEFT JOIN S ON R.b = S.b", dict_schema)

    def test_count_rejected(self, dict_schema):
        with pytest.raises(TranslationError):
            tr("SELECT COUNT(*) FROM R", dict_schema)

    def test_arithmetic_predicate_rejected(self, dict_schema):
        with pytest.raises(TranslationError):
            tr("SELECT a FROM R WHERE a + 1 = 2", dict_schema)

    def test_duplicate_alias_rejected(self, dict_schema):
        with pytest.raises(TranslationError):
            tr("SELECT 1 FROM R x, S x", dict_schema)
