"""CQ minimization (core) tests."""

from repro.relalg.containment import equivalent
from repro.relalg.cq import CQ, Atom, Comp, Const, Var
from repro.relalg.minimize import minimize_cq, minimize_ucq
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select


def tr1(sql, schema):
    return translate_select(parse_select(sql), schema).disjuncts[0]


class TestMinimizeCQ:
    def test_redundant_atom_removed(self):
        # Q(x) :- R(x, y), R(x, z) minimizes to a single atom.
        query = CQ(
            head=(Var("x"),),
            body=(Atom("R", (Var("x"), Var("y"))), Atom("R", (Var("x"), Var("z")))),
        )
        core = minimize_cq(query)
        assert len(core.body) == 1
        assert equivalent(core, query)

    def test_non_redundant_join_kept(self, dict_schema):
        query = tr1("SELECT R.a FROM R JOIN S ON R.b = S.b", dict_schema)
        core = minimize_cq(query)
        assert len(core.body) == 2

    def test_head_variable_never_orphaned(self):
        # Both atoms bind head vars; neither can go.
        query = CQ(
            head=(Var("x"), Var("w")),
            body=(Atom("R", (Var("x"), Var("y"))), Atom("R", (Var("w"), Var("y")))),
        )
        core = minimize_cq(query)
        assert {t for t in core.head} <= core.body_variables()

    def test_duplicate_atom_collapsed_with_dangling_comp_rewritten(self):
        # Two copies of R(x, y) guarded by equal comps; one copy plus the
        # comps rewritten onto surviving vars.
        query = CQ(
            head=(Var("x"),),
            body=(
                Atom("R", (Var("x"), Var("y"))),
                Atom("R", (Var("x2"), Var("y2"))),
            ),
            comps=(
                Comp("=", Var("x"), Var("x2")),
                Comp("=", Var("y"), Var("y2")),
                Comp("=", Var("y2"), Const(3)),
            ),
        )
        core = minimize_cq(query)
        assert len(core.body) == 1
        assert equivalent(core, query)

    def test_implied_comp_dropped(self):
        query = CQ(
            head=(Var("x"),),
            body=(Atom("T", (Var("x"),)),),
            comps=(
                Comp("<", Var("x"), Const(10)),
                Comp("<", Var("x"), Const(20)),  # implied by the first
            ),
        )
        core = minimize_cq(query)
        assert len(core.comps) == 1

    def test_minimization_preserves_equivalence(self, dict_schema):
        query = tr1(
            "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId"
            " JOIN Attendance b ON e.EId = b.EId WHERE a.UId = 1 AND b.UId = 1",
            dict_schema,
        )
        core = minimize_cq(query)
        assert equivalent(core, query)
        assert len(core.body) == 2  # the duplicate Attendance join folds


class TestMinimizeUCQ:
    def test_subsumed_disjunct_dropped(self, dict_schema):
        union = translate_select(
            parse_select("SELECT a FROM R WHERE b = 1 OR b = 1 OR b = 2"),
            dict_schema,
        )
        minimized = minimize_ucq(union)
        assert len(minimized.disjuncts) == 2

    def test_disjunct_contained_in_other_dropped(self, dict_schema):
        from repro.relalg.cq import UCQ

        narrow = tr1("SELECT a FROM R WHERE b = 1", dict_schema)
        broad = tr1("SELECT a FROM R", dict_schema)
        minimized = minimize_ucq(UCQ((narrow, broad)))
        assert len(minimized.disjuncts) == 1
