"""CQ → SQL rendering tests."""

import pytest

from repro.relalg.containment import equivalent
from repro.relalg.cq import CQ, Atom, Comp, Const, Param, Var
from repro.relalg.render import cq_to_select, cq_to_sql
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select
from repro.util.errors import DbacError


def tr1(sql, schema):
    return translate_select(parse_select(sql), schema).disjuncts[0]


RENDER_CASES = [
    "SELECT a FROM R",
    "SELECT a FROM R WHERE b = 3",
    "SELECT R.a FROM R JOIN S ON R.b = S.b WHERE S.c = 7",
    "SELECT EId FROM Attendance WHERE UId = ?MyUId",
    "SELECT Name FROM Employees WHERE Age >= 60",
    "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId"
    " WHERE a.UId = ?MyUId",
    "SELECT a FROM R WHERE b IS NULL",
    "SELECT a FROM R WHERE b <> 4",
]


@pytest.mark.parametrize("sql", RENDER_CASES)
def test_render_roundtrip_equivalence(sql, dict_schema):
    """translate → render → translate yields an equivalent query."""
    original = tr1(sql, dict_schema)
    rendered = cq_to_select(original, dict_schema)
    back = translate_select(rendered, dict_schema).disjuncts[0]
    # Pin params so they unify by name on both sides.
    bindings = {p.name: f"\x00{p.name}" for p in original.params()}
    assert equivalent(original.instantiate(bindings), back.instantiate(bindings))


class TestRenderDetails:
    def test_repeated_var_renders_join_equality(self, dict_schema):
        query = CQ(
            head=(Var("x"),),
            body=(Atom("R", (Var("x"), Var("y"))), Atom("S", (Var("y"), Var("z")))),
        )
        sql = cq_to_sql(query, dict_schema)
        assert "t0.b = t1.b" in sql

    def test_const_arg_renders_predicate(self, dict_schema):
        query = CQ(head=(Var("x"),), body=(Atom("R", (Var("x"), Const(3))),))
        sql = cq_to_sql(query, dict_schema)
        assert "t0.b = 3" in sql

    def test_null_arg_renders_is_null(self, dict_schema):
        query = CQ(head=(Var("x"),), body=(Atom("R", (Var("x"), Const(None))),))
        sql = cq_to_sql(query, dict_schema)
        assert "IS NULL" in sql

    def test_param_arg_renders_named_param(self, dict_schema):
        query = CQ(head=(Var("x"),), body=(Atom("R", (Var("x"), Param("MyUId"))),))
        assert "?MyUId" in cq_to_sql(query, dict_schema)

    def test_head_alias_applied(self, dict_schema):
        query = CQ(
            head=(Var("x"),),
            body=(Atom("R", (Var("x"), Var("y"))),),
            head_names=("renamed",),
        )
        assert "AS renamed" in cq_to_sql(query, dict_schema)

    def test_dangling_head_var_rejected(self, dict_schema):
        query = CQ(head=(Var("nowhere"),), body=(Atom("T", (Var("x"),)),))
        with pytest.raises(DbacError):
            cq_to_sql(query, dict_schema)

    def test_unknown_relation_rejected(self, dict_schema):
        query = CQ(head=(Var("x"),), body=(Atom("Nope", (Var("x"),)),))
        with pytest.raises(DbacError):
            cq_to_sql(query, dict_schema)

    def test_neq_renders_angle_brackets(self, dict_schema):
        query = CQ(
            head=(Var("x"),),
            body=(Atom("T", (Var("x"),)),),
            comps=(Comp("!=", Var("x"), Const(4)),),
        )
        assert "<> 4" in cq_to_sql(query, dict_schema)
