"""Tests for the rewriting-core memoization layer (``repro.relalg.memo``).

Three claims, each with its own test class: the LRU memo is a bounded,
counted cache; canonicalization identifies exactly the alpha-equivalent
queries; and the memoized containment/rewriting paths agree with the
seed computation (memoization off) while actually hitting their caches.
"""

from __future__ import annotations

import pytest

from repro.enforce.checker import ComplianceChecker
from repro.relalg import memo
from repro.relalg.containment import cq_contained_in
from repro.relalg.cq import Const, Var
from repro.relalg.translate import translate_select
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.workloads import calendar_app


@pytest.fixture(autouse=True)
def clean_memos():
    """Isolate every test from global memo state (and restore it after)."""
    previous = memo.set_memoization(True)
    memo.clear_memos()
    memo.reset_memo_stats()
    yield
    memo.set_memoization(previous)
    memo.clear_memos()
    memo.reset_memo_stats()


def tr1(sql, schema):
    return translate_select(parse_select(sql), schema).disjuncts[0]


def rename_vars(cq, suffix):
    """An alpha-variant of ``cq``: every variable renamed with ``suffix``."""
    mapping = {v: Var(f"{v.name}{suffix}") for v in cq.variables()}
    return cq.substitute(mapping)


class TestLRUMemo:
    def test_get_put_and_counters(self):
        m = memo.LRUMemo("t", maxsize=4)
        assert m.get("k") is memo.MISSING
        m.put("k", "v")
        assert m.get("k") == "v"
        assert m.stats() == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}

    def test_falsy_values_are_hits(self):
        # Containment results are often False; MISSING (not None) is the
        # miss sentinel precisely so falsy values cache correctly.
        m = memo.LRUMemo("t", maxsize=4)
        m.put("k", False)
        assert m.get("k") is False
        assert m.hits == 1

    def test_bounded_with_lru_eviction(self):
        m = memo.LRUMemo("t", maxsize=2)
        m.put("a", 1)
        m.put("b", 2)
        m.get("a")  # refresh "a" so "b" is now the LRU entry
        m.put("c", 3)
        assert len(m) == 2
        assert m.evictions == 1
        assert m.get("b") is memo.MISSING
        assert m.get("a") == 1
        assert m.get("c") == 3

    def test_clear_and_reset_stats(self):
        m = memo.LRUMemo("t", maxsize=4)
        m.put("a", 1)
        m.get("a")
        m.get("zzz")
        m.clear()
        assert len(m) == 0
        m.reset_stats()
        assert m.stats() == {"hits": 0, "misses": 0, "evictions": 0, "size": 0}

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            memo.LRUMemo("t", maxsize=0)

    def test_memo_stats_is_flat_and_prefixed(self):
        stats = memo.memo_stats()
        for prefix in ("containment", "descriptors", "analysis"):
            for counter in ("hits", "misses", "evictions", "size"):
                assert f"{prefix}_{counter}" in stats


class TestCanonicalForm:
    def test_alpha_variants_share_canonical_form(self, dict_schema):
        q = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        variant = rename_vars(q, "'")
        assert q != variant
        assert memo.canonical_form(q)[0] == memo.canonical_form(variant)[0]

    def test_constants_not_abstracted(self, dict_schema):
        q3 = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        q4 = tr1("SELECT a FROM R WHERE b = 4", dict_schema)
        assert memo.canonical_form(q3)[0] != memo.canonical_form(q4)[0]
        canon = memo.canonical_form(q3)[0]
        assert any(
            Const(3) in atom.args for atom in canon.body
        ) or any(Const(3) in (comp.left, comp.right) for comp in canon.comps)

    def test_inverse_mapping_round_trips(self, dict_schema):
        q = tr1("SELECT R.a FROM R JOIN S ON R.b = S.b WHERE c >= 2", dict_schema)
        canonical, inverse = memo.canonical_form(q)
        restored = canonical.substitute(inverse)
        # name/head_names are stripped by design; everything semantic
        # (head terms, body, comparisons) round-trips exactly.
        assert restored.head == q.head
        assert restored.body == q.body
        assert restored.comps == q.comps

    def test_idempotent(self, dict_schema):
        q = tr1("SELECT R.a FROM R JOIN S ON R.b = S.b", dict_schema)
        canonical, _ = memo.canonical_form(q)
        again, inverse = memo.canonical_form(canonical)
        assert again == canonical
        assert all(v == k for k, v in inverse.items())

    def test_distinct_shapes_stay_distinct(self, dict_schema):
        q1 = tr1("SELECT a FROM R", dict_schema)
        q2 = tr1("SELECT b FROM R", dict_schema)
        assert memo.canonical_form(q1)[0] != memo.canonical_form(q2)[0]


PAIRS = [
    # (narrow, broad) SQL pairs covering the containment fragment.
    ("SELECT a FROM R WHERE b = 3", "SELECT a FROM R"),
    ("SELECT R.a FROM R JOIN S ON R.b = S.b", "SELECT a FROM R"),
    ("SELECT Name FROM Employees WHERE Age >= 60",
     "SELECT Name FROM Employees WHERE Age >= 18"),
    ("SELECT EId FROM Attendance WHERE UId = ?MyUId",
     "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
    ("SELECT a FROM R", "SELECT b FROM R"),
]


class TestMemoizedContainment:
    def test_agrees_with_seed_path(self, dict_schema):
        for narrow_sql, broad_sql in PAIRS:
            narrow = tr1(narrow_sql, dict_schema)
            broad = tr1(broad_sql, dict_schema)
            for q1, q2 in ((narrow, broad), (broad, narrow)):
                memo.set_memoization(False)
                seed = cq_contained_in(q1, q2)
                memo.set_memoization(True)
                assert cq_contained_in(q1, q2) == seed  # first call: miss
                assert cq_contained_in(q1, q2) == seed  # second call: hit

    def test_alpha_variants_hit_the_same_entry(self, dict_schema):
        narrow = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        broad = tr1("SELECT a FROM R", dict_schema)
        assert cq_contained_in(narrow, broad)
        before = memo.CONTAINMENT_MEMO.hits
        assert cq_contained_in(rename_vars(narrow, "'"), rename_vars(broad, "~x"))
        assert memo.CONTAINMENT_MEMO.hits == before + 1

    def test_disabled_path_leaves_memos_untouched(self, dict_schema):
        memo.set_memoization(False)
        q = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        cq_contained_in(q, tr1("SELECT a FROM R", dict_schema))
        stats = memo.memo_stats()
        assert stats["containment_hits"] == 0
        assert stats["containment_misses"] == 0
        assert stats["containment_size"] == 0


CHECKER_QUERIES = [
    ("SELECT EId FROM Attendance WHERE UId = ?", [1]),
    ("SELECT Title, Loc FROM Events WHERE EId = ?", [2]),
    ("SELECT Name FROM Users WHERE UId = ?", [4]),
    ("SELECT UId FROM Attendance WHERE EId = ?", [3]),
    ("SELECT * FROM Events", []),
]


class TestMemoizedChecker:
    """End-to-end: full compliance checks agree with memoization on/off."""

    def test_decisions_identical_and_descriptor_memo_hits(self):
        schema = calendar_app.make_schema()
        policy = calendar_app.ground_truth_policy()
        checker = ComplianceChecker(schema, policy)
        bindings = {"MyUId": 1}
        stmts = [
            bind_parameters(parse_select(sql), args) for sql, args in CHECKER_QUERIES
        ]

        memo.set_memoization(False)
        seed = [checker.check(stmt, bindings) for stmt in stmts]

        memo.set_memoization(True)
        cold = [checker.check(stmt, bindings) for stmt in stmts]
        warm = [checker.check(stmt, bindings) for stmt in stmts]

        for seed_d, cold_d, warm_d in zip(seed, cold, warm):
            assert cold_d.allowed == seed_d.allowed
            assert warm_d.allowed == seed_d.allowed
            assert cold_d.reason == seed_d.reason
            assert warm_d.reason == seed_d.reason
        # The warm pass repeats every query shape: the descriptor memo
        # must be doing real work by then.
        stats = memo.memo_stats()
        assert stats["descriptors_hits"] > 0
        assert stats["analysis_hits"] > 0
