"""Containment tests, including the comparison fragment."""

from repro.relalg.containment import (
    containment_mapping,
    cq_contained_in,
    equivalent,
    satisfiable,
    ucq_contained_in,
)
from repro.relalg.cq import CQ, UCQ, Atom, Comp, Const, Param, Var
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select


def tr1(sql, schema):
    return translate_select(parse_select(sql), schema).disjuncts[0]


class TestPlainCQs:
    def test_identity(self, dict_schema):
        q = tr1("SELECT a FROM R", dict_schema)
        assert cq_contained_in(q, q)

    def test_selection_contained_in_full(self, dict_schema):
        narrow = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        broad = tr1("SELECT a FROM R", dict_schema)
        assert cq_contained_in(narrow, broad)
        assert not cq_contained_in(broad, narrow)

    def test_join_contained_in_single_table(self, dict_schema):
        join = tr1("SELECT R.a FROM R JOIN S ON R.b = S.b", dict_schema)
        single = tr1("SELECT a FROM R", dict_schema)
        assert cq_contained_in(join, single)
        assert not cq_contained_in(single, join)

    def test_head_mismatch_not_contained(self, dict_schema):
        q1 = tr1("SELECT a FROM R", dict_schema)
        q2 = tr1("SELECT b FROM R", dict_schema)
        assert not cq_contained_in(q1, q2)

    def test_arity_mismatch(self, dict_schema):
        q1 = tr1("SELECT a FROM R", dict_schema)
        q2 = tr1("SELECT a, b FROM R", dict_schema)
        assert not cq_contained_in(q1, q2)

    def test_constant_head_alignment(self, dict_schema):
        q1 = tr1("SELECT 1 FROM R", dict_schema)
        q2 = tr1("SELECT 1 FROM R", dict_schema)
        q3 = tr1("SELECT 2 FROM R", dict_schema)
        assert cq_contained_in(q1, q2)
        assert not cq_contained_in(q1, q3)

    def test_equality_comp_vs_inline_constant(self, dict_schema):
        # R(x, 3) as a comp should match a container requiring b = 3.
        with_comp = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        container = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        assert equivalent(with_comp, container)

    def test_unsatisfiable_contained_in_anything(self, dict_schema):
        bottom = tr1("SELECT a FROM R WHERE a < 1 AND a > 2", dict_schema)
        anything = tr1("SELECT b FROM S", dict_schema)
        assert not satisfiable(bottom)
        assert cq_contained_in(bottom, anything)


class TestComparisons:
    def test_age_60_contained_in_age_18(self, dict_schema):
        seniors = tr1("SELECT Name FROM Employees WHERE Age >= 60", dict_schema)
        adults = tr1("SELECT Name FROM Employees WHERE Age >= 18", dict_schema)
        assert cq_contained_in(seniors, adults)
        assert not cq_contained_in(adults, seniors)

    def test_range_containment(self, dict_schema):
        inner = tr1(
            "SELECT Name FROM Employees WHERE Age >= 30 AND Age <= 40", dict_schema
        )
        outer = tr1(
            "SELECT Name FROM Employees WHERE Age >= 20 AND Age <= 50", dict_schema
        )
        assert cq_contained_in(inner, outer)
        assert not cq_contained_in(outer, inner)

    def test_equality_implies_range(self, dict_schema):
        point = tr1("SELECT Name FROM Employees WHERE Age = 35", dict_schema)
        band = tr1(
            "SELECT Name FROM Employees WHERE Age >= 30 AND Age <= 40", dict_schema
        )
        assert cq_contained_in(point, band)

    def test_neq_not_implied_by_nothing(self, dict_schema):
        all_rows = tr1("SELECT Name FROM Employees", dict_schema)
        not_30 = tr1("SELECT Name FROM Employees WHERE Age <> 30", dict_schema)
        assert not cq_contained_in(all_rows, not_30)
        assert cq_contained_in(not_30, all_rows)


class TestParams:
    def test_same_param_matches(self, dict_schema):
        q1 = tr1("SELECT EId FROM Attendance WHERE UId = ?MyUId", dict_schema)
        q2 = tr1("SELECT EId FROM Attendance WHERE UId = ?MyUId", dict_schema)
        assert cq_contained_in(q1, q2)

    def test_different_params_conservative(self, dict_schema):
        q1 = tr1("SELECT EId FROM Attendance WHERE UId = ?A", dict_schema)
        q2 = tr1("SELECT EId FROM Attendance WHERE UId = ?B", dict_schema)
        assert not cq_contained_in(q1, q2)


class TestUCQ:
    def test_disjunct_contained_in_union(self, dict_schema):
        union = translate_select(
            parse_select("SELECT a FROM R WHERE b = 1 OR b = 2"), dict_schema
        )
        left = tr1("SELECT a FROM R WHERE b = 1", dict_schema)
        assert ucq_contained_in(UCQ.of(left), union)

    def test_union_contained_in_broad(self, dict_schema):
        union = translate_select(
            parse_select("SELECT a FROM R WHERE b = 1 OR b = 2"), dict_schema
        )
        broad = tr1("SELECT a FROM R", dict_schema)
        assert ucq_contained_in(union, UCQ.of(broad))

    def test_broad_not_contained_in_union(self, dict_schema):
        union = translate_select(
            parse_select("SELECT a FROM R WHERE b = 1 OR b = 2"), dict_schema
        )
        broad = tr1("SELECT a FROM R", dict_schema)
        assert not ucq_contained_in(UCQ.of(broad), union)


class TestMapping:
    def test_mapping_witness_returned(self, dict_schema):
        narrow = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        broad = tr1("SELECT a FROM R", dict_schema)
        mapping = containment_mapping(narrow, broad)
        assert mapping is not None
        assert mapping[Var("R.a")] == Var("R.a")

    def test_no_mapping_when_not_contained(self, dict_schema):
        broad = tr1("SELECT a FROM R", dict_schema)
        narrow = tr1("SELECT a FROM R WHERE b = 3", dict_schema)
        assert containment_mapping(broad, narrow) is None

    def test_self_join_folding(self):
        # Q(x) :- R(x, y), R(x, x) is contained in Q'(x) :- R(x, z).
        q1 = CQ(
            head=(Var("x"),),
            body=(Atom("R", (Var("x"), Var("y"))), Atom("R", (Var("x"), Var("x")))),
        )
        q2 = CQ(head=(Var("x"),), body=(Atom("R", (Var("x"), Var("z"))),))
        assert cq_contained_in(q1, q2)
        assert not cq_contained_in(q2, q1)
