"""Canonical-database (freezing) tests."""

import pytest

from repro.evaluate.answers import evaluate_cq
from repro.relalg.cq import CQ, Atom, Comp, Const, Param, Var
from repro.relalg.frozen import freeze, solve_assignment
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select
from repro.util.errors import DbacError


def tr1(sql, schema):
    return translate_select(parse_select(sql), schema).disjuncts[0]


class TestFreeze:
    def test_query_returns_head_on_frozen_instance(self, dict_schema):
        query = tr1("SELECT R.a FROM R JOIN S ON R.b = S.b WHERE S.c = 7", dict_schema)
        frozen = freeze(query)
        instance = {rel: set(rows) for rel, rows in frozen.facts.items()}
        assert frozen.head_row in evaluate_cq(query, instance)

    def test_constants_preserved(self, dict_schema):
        query = tr1("SELECT a FROM R WHERE b = 42", dict_schema)
        frozen = freeze(query)
        rows = frozen.facts["R"]
        assert any(row[1] == 42 for row in rows)

    def test_distinct_vars_get_distinct_values(self, dict_schema):
        query = tr1("SELECT a, b FROM R", dict_schema)
        frozen = freeze(query)
        row = next(iter(frozen.facts["R"]))
        assert row[0] != row[1]

    def test_equal_vars_share_value(self, dict_schema):
        query = tr1("SELECT R.a FROM R JOIN S ON R.b = S.b", dict_schema)
        frozen = freeze(query)
        r_row = next(iter(frozen.facts["R"]))
        s_row = next(iter(frozen.facts["S"]))
        assert r_row[1] == s_row[0]

    def test_order_constraints_satisfied(self, dict_schema):
        query = tr1(
            "SELECT Name FROM Employees WHERE Age >= 60 AND Age < 65", dict_schema
        )
        frozen = freeze(query)
        row = next(iter(frozen.facts["Employees"]))
        age = row[2]
        assert 60 <= age < 65

    def test_unsatisfiable_raises(self, dict_schema):
        query = tr1("SELECT a FROM R WHERE b < 1 AND b > 2", dict_schema)
        with pytest.raises(DbacError):
            freeze(query)

    def test_param_values_pinned(self, dict_schema):
        query = tr1("SELECT EId FROM Attendance WHERE UId = ?MyUId", dict_schema)
        frozen = freeze(query, param_values={"MyUId": 9})
        row = next(iter(frozen.facts["Attendance"]))
        assert row[0] == 9


class TestSolveAssignment:
    def test_simple_chain(self):
        query = CQ(
            head=(),
            body=(Atom("T", (Var("x"),)), Atom("T", (Var("y"),))),
            comps=(Comp("<", Var("x"), Var("y")),),
        )
        assignment = solve_assignment(query)
        assert assignment is not None
        assert assignment[Var("x")] < assignment[Var("y")]

    def test_tight_integer_bounds(self):
        query = CQ(
            head=(),
            body=(Atom("T", (Var("x"),)),),
            comps=(
                Comp("<=", Const(5), Var("x")),
                Comp("<=", Var("x"), Const(5)),
            ),
        )
        assignment = solve_assignment(query)
        assert assignment is not None
        assert assignment[Var("x")] == 5

    def test_strict_point_unsatisfiable(self):
        query = CQ(
            head=(),
            body=(Atom("T", (Var("x"),)),),
            comps=(
                Comp("<", Const(5), Var("x")),
                Comp("<", Var("x"), Const(6)),
            ),
        )
        assignment = solve_assignment(query)
        # Satisfiable with a float strictly between 5 and 6.
        assert assignment is not None
        assert 5 < assignment[Var("x")] < 6

    def test_null_equality(self):
        query = CQ(
            head=(),
            body=(Atom("T", (Var("x"),)),),
            comps=(Comp("=", Var("x"), Const(None)),),
        )
        assignment = solve_assignment(query)
        assert assignment is not None
        assert assignment[Var("x")] is None
