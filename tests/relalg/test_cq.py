"""CQ data-structure tests."""

import pytest

from repro.relalg.cq import (
    CQ,
    UCQ,
    Atom,
    Comp,
    Const,
    Param,
    Var,
    fresh_var_factory,
)
from repro.util.errors import DbacError


class TestTerms:
    def test_terms_hashable_and_equal(self):
        assert Var("x") == Var("x")
        assert Const(1) == Const(1)
        assert Param("A") == Param("A")
        assert len({Var("x"), Var("x"), Var("y")}) == 2

    def test_const_none_distinct_from_zero(self):
        assert Const(None) != Const(0)


class TestComp:
    def test_normalized_gt(self):
        comp = Comp.normalized(">", Var("x"), Const(5))
        assert comp == Comp("<", Const(5), Var("x"))

    def test_normalized_gte(self):
        comp = Comp.normalized(">=", Var("x"), Const(5))
        assert comp == Comp("<=", Const(5), Var("x"))

    def test_normalized_ne(self):
        assert Comp.normalized("<>", Var("x"), Var("y")).op == "!="

    def test_unknown_operator_rejected(self):
        with pytest.raises(DbacError):
            Comp.normalized("~", Var("x"), Var("y"))


class TestCQ:
    def test_variables_collects_all_positions(self):
        query = CQ(
            head=(Var("h"),),
            body=(Atom("R", (Var("a"), Var("b"))),),
            comps=(Comp("<", Var("c"), Const(1)),),
        )
        assert query.variables() == {Var("h"), Var("a"), Var("b"), Var("c")}

    def test_params_collected(self):
        query = CQ(
            head=(Param("P"),),
            body=(Atom("R", (Var("a"), Param("Q"))),),
            comps=(Comp("=", Var("a"), Param("R")),),
        )
        assert {p.name for p in query.params()} == {"P", "Q", "R"}

    def test_substitute(self):
        query = CQ(head=(Var("x"),), body=(Atom("R", (Var("x"), Var("y"))),))
        out = query.substitute({Var("x"): Const(1)})
        assert out.head == (Const(1),)
        assert out.body[0].args[0] == Const(1)

    def test_instantiate_params(self):
        query = CQ(
            head=(Var("x"),),
            body=(Atom("R", (Var("x"), Param("MyUId"))),),
        )
        out = query.instantiate({"MyUId": 7})
        assert out.body[0].args[1] == Const(7)

    def test_instantiate_leaves_unknown_params(self):
        query = CQ(head=(Param("Other"),), body=(Atom("T", (Var("x"),)),))
        assert query.instantiate({"MyUId": 7}).head == (Param("Other"),)

    def test_rename_apart(self):
        query = CQ(head=(Var("x"),), body=(Atom("R", (Var("x"), Var("y"))),))
        renamed = query.rename_apart({"x"})
        assert Var("x") not in renamed.variables()
        assert len(renamed.variables()) == 2

    def test_head_names_must_align(self):
        with pytest.raises(DbacError):
            CQ(head=(Var("x"),), body=(), head_names=("a", "b"))


class TestUCQ:
    def test_empty_rejected(self):
        with pytest.raises(DbacError):
            UCQ(())

    def test_arity_mismatch_rejected(self):
        one = CQ(head=(Var("x"),), body=(Atom("T", (Var("x"),)),))
        two = CQ(head=(Var("x"), Var("y")), body=(Atom("R", (Var("x"), Var("y"))),))
        with pytest.raises(DbacError):
            UCQ((one, two))

    def test_of_coerces(self):
        cq = CQ(head=(Var("x"),), body=(Atom("T", (Var("x"),)),))
        assert UCQ.of(cq).disjuncts == (cq,)
        assert UCQ.of(UCQ.of(cq)).disjuncts == (cq,)


def test_fresh_var_factory_unique():
    fresh = fresh_var_factory("t")
    names = {fresh().name for _ in range(100)}
    assert len(names) == 100
