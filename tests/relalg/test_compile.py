"""CompiledPolicy: the epoch-built compilation of a policy.

The compiled artifacts are pure accelerators — every test here pins a
piece of them to the generic path they replace: ``view_defs`` must
return exactly what ``Policy.view_defs`` returns (same views, same
order — rewriting enumeration is order-sensitive), ``relevant_relations``
must replicate the checker's reachability loop, and the bindings-keyed
memo must be invisible apart from its hit counters.
"""

from __future__ import annotations

import threading

import pytest

from repro.relalg.compile import CompiledPolicy, compile_policy
from repro.workloads import calendar_app, social


@pytest.fixture(scope="module")
def compiled() -> CompiledPolicy:
    return compile_policy(calendar_app.make_schema(), calendar_app.ground_truth_policy())


@pytest.fixture(scope="module")
def policy():
    return calendar_app.ground_truth_policy()


class TestViewDefs:
    def test_matches_policy_view_defs_exactly(self, compiled, policy):
        bindings = {"MyUId": 3}
        want = policy.view_defs(bindings)
        got = compiled.view_defs(bindings)
        assert [(v.name, v.cq) for v in got] == [(v.name, v.cq) for v in want]

    def test_order_is_policy_order(self, compiled, policy):
        names = [view.name for view in compiled.view_defs({"MyUId": 1})]
        conjunctive = [
            view.name for view in policy.views if view.is_conjunctive
        ]
        assert names == conjunctive

    def test_memo_hits_on_repeat_bindings(self, compiled):
        before = compiled.stats()["view_def_hits"]
        compiled.view_defs({"MyUId": 77})
        compiled.view_defs({"MyUId": 77})
        after = compiled.stats()["view_def_hits"]
        assert after >= before + 1

    def test_memo_returns_fresh_lists(self, compiled):
        first = compiled.view_defs({"MyUId": 5})
        second = compiled.view_defs({"MyUId": 5})
        assert first == second
        assert first is not second  # callers may mutate their copy
        first.clear()
        assert compiled.view_defs({"MyUId": 5}) == second

    def test_unhashable_bindings_fall_back_uncached(self, compiled):
        # A list-valued binding cannot key the memo; the call must still
        # answer (by building uncached), not raise.
        views = compiled.view_defs({"MyUId": [1, 2]})
        assert isinstance(views, list)

    def test_memo_is_bounded(self, compiled):
        from repro.relalg.compile import _VIEW_DEF_MEMO_SIZE

        for uid in range(_VIEW_DEF_MEMO_SIZE + 50):
            compiled.view_defs({"MyUId": 100000 + uid})
        assert len(compiled._view_def_memo) <= _VIEW_DEF_MEMO_SIZE

    def test_memo_is_thread_safe(self, compiled):
        errors = []

        def hammer(base):
            try:
                for i in range(200):
                    compiled.view_defs({"MyUId": base + (i % 17)})
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t * 1000,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestRelevantRelations:
    def reference(self, policy, bindings, query_relations):
        """The checker's pre-compile single-pass reachability loop."""
        views = policy.view_defs(bindings)
        relevant = set(query_relations)
        for view in views:
            rels = {atom.rel for atom in view.cq.body}
            if rels & relevant:
                relevant |= rels
        return relevant

    @pytest.mark.parametrize(
        "seeds",
        [
            {"Events"},
            {"Attendance"},
            {"Users"},
            {"Events", "Users"},
            {"NoSuchRel"},
            set(),
        ],
    )
    def test_replicates_checker_loop(self, compiled, policy, seeds):
        got = compiled.relevant_relations(set(seeds))
        want = self.reference(policy, {"MyUId": 1}, seeds)
        assert got == want

    def test_social_app_parity(self):
        policy = social.ground_truth_policy()
        compiled = compile_policy(social.make_schema(), policy)
        rel_names = {
            atom.rel
            for view in policy.views
            if view.is_conjunctive
            for atom in view.ucq.disjuncts[0].body
        }
        seed_sets = [{rel} for rel in sorted(rel_names)] + [set(rel_names)]
        for seeds in seed_sets:
            views = policy.view_defs({"MyUId": 1})
            relevant = set(seeds)
            for view in views:
                rels = {atom.rel for atom in view.cq.body}
                if rels & relevant:
                    relevant |= rels
            assert compiled.relevant_relations(set(seeds)) == relevant


class TestArtifacts:
    def test_view_constants_match_policy(self, compiled, policy):
        assert set(compiled.view_constants) == set(policy.constants())

    def test_dispatch_covers_every_view_relation(self, compiled):
        for index, view in enumerate(compiled.views):
            for rel in view.relations:
                assert index in compiled.dispatch[rel]

    def test_touching_returns_views_over_relation(self, compiled):
        for rel, indexes in compiled.dispatch.items():
            names = {compiled.views[i].name for i in indexes}
            assert {view.name for view in compiled.touching(rel)} == names

    def test_build_is_timed_and_fingerprinted(self, compiled, policy):
        assert compiled.build_seconds >= 0.0
        assert compiled.fingerprint == policy.fingerprint()
        stats = compiled.stats()
        assert stats["views"] == len(compiled.views)
        assert stats["fingerprint"] == policy.fingerprint()
