"""Prepared-statement handles over the wire: PREPARE / EXECUTE.

The contract under test: EXECUTE ships only bindings yet is
decision-equivalent to sending the same SQL through QUERY — same rows,
same blocks, same trace history — and the handle table is per-epoch:
a hot reload makes every earlier handle stale, refused with
``ERROR/malformed`` + ``stale: true`` so clients re-prepare.
"""

from __future__ import annotations

import pytest

from repro.enforce.decision import PolicyViolation
from repro.lifecycle import LifecycleManager
from repro.net import (
    AdminClient,
    BackgroundServer,
    NetClientConnection,
    NetError,
    ServerConfig,
    protocol,
)
from repro.policy.policy import Policy
from repro.policy.serialize import policy_to_text
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


def make_gateway(**config) -> EnforcementGateway:
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.make_app().ground_truth_policy()
    return EnforcementGateway(db, policy, GatewayConfig(**config))


@pytest.fixture
def server():
    with BackgroundServer(make_gateway(), ServerConfig(port=0)) as background:
        yield background


@pytest.fixture
def lifecycle_server():
    gateway = make_gateway()
    lifecycle = LifecycleManager(gateway)
    with BackgroundServer(
        gateway, ServerConfig(port=0), lifecycle=lifecycle
    ) as background:
        yield background, gateway


def connect(background: BackgroundServer, **kwargs) -> NetClientConnection:
    kwargs.setdefault("user", 1)
    return NetClientConnection(background.host, background.port, **kwargs)


class TestPrepareExecute:
    def test_execute_matches_query(self, server):
        connection = connect(server)
        prepared = connection.prepare("SELECT EId FROM Attendance WHERE UId = ?")
        assert prepared.select and prepared.handle >= 1
        direct = connection.query("SELECT EId FROM Attendance WHERE UId = ?", [1])
        via_handle = connection.execute(prepared, [1])
        assert via_handle.columns == direct.columns
        assert sorted(via_handle.rows) == sorted(direct.rows)
        connection.close()

    def test_execute_feeds_trace_history_like_query(self, server):
        """Example 2.1 through the prepared path: the attendance probe via
        EXECUTE must certify the fact that later admits the Events query."""
        connection = connect(server, fresh=True)
        probe = connection.prepare(
            "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?"
        )
        assert len(connection.execute(probe, [1, 2])) == 1
        assert not connection.query("SELECT * FROM Events WHERE EId = 2").is_empty()
        connection.close()

    def test_blocked_execute_raises_policy_violation(self, server):
        connection = connect(server, fresh=True)
        prepared = connection.prepare("SELECT * FROM Events WHERE EId = ?")
        with pytest.raises(PolicyViolation) as excinfo:
            connection.execute(prepared, [2])
        assert not excinfo.value.decision.allowed
        connection.close()

    def test_prepared_write_returns_rowcount_and_invalidates(self, server):
        connection = connect(server)
        prepared = connection.prepare("UPDATE Events SET Title = Title")
        assert prepared.select is False
        count = connection.execute(prepared)
        assert isinstance(count, int) and count > 0
        assert server.server.gateway.metrics.counter("writes") == 1
        connection.close()

    def test_prepare_counts_in_metrics(self, server):
        connection = connect(server)
        connection.prepare("SELECT EId FROM Attendance WHERE UId = ?")
        assert server.server.metrics.counter("statements_prepared") == 1
        connection.close()

    def test_unparsable_sql_is_an_engine_error(self, server):
        connection = connect(server)
        with pytest.raises(NetError) as excinfo:
            connection.prepare("THIS IS NOT SQL")
        assert excinfo.value.code == protocol.ERR_ENGINE
        assert connection.ping() < 5.0  # connection survives
        connection.close()


class TestHandleHygiene:
    def test_prepare_before_hello_is_unauthenticated(self, server):
        import socket

        sock = socket.create_connection((server.host, server.port), timeout=5.0)
        sock.settimeout(5.0)
        protocol.write_frame(
            sock, {"type": protocol.PREPARE, "id": 1, "sql": "SELECT 1 FROM Events"}
        )
        assert protocol.read_frame(sock)["code"] == protocol.ERR_UNAUTHENTICATED
        protocol.write_frame(sock, {"type": protocol.EXECUTE, "id": 2, "handle": 1})
        assert protocol.read_frame(sock)["code"] == protocol.ERR_UNAUTHENTICATED
        sock.close()

    def test_unknown_handle_is_malformed_but_keeps_the_connection(self, server):
        connection = connect(server)
        protocol.write_frame(
            connection._sock,
            {"type": protocol.EXECUTE, "id": 7, "handle": 404, "args": []},
        )
        reply = protocol.read_frame(connection._sock)
        assert reply["code"] == protocol.ERR_MALFORMED
        assert "stale" not in reply
        assert server.server.metrics.counter("prepared_unknown") == 1
        assert connection.ping() < 5.0  # still alive: client bug, not framing
        connection.close()

    def test_handle_must_be_an_integer(self, server):
        connection = connect(server)
        protocol.write_frame(
            connection._sock,
            {"type": protocol.EXECUTE, "id": 8, "handle": "one", "args": []},
        )
        assert protocol.read_frame(connection._sock)["code"] == protocol.ERR_BAD_REQUEST
        connection.close()

    def test_handles_are_per_connection(self, server):
        first = connect(server)
        prepared = first.prepare("SELECT EId FROM Attendance WHERE UId = ?")
        second = connect(server, user=2, fresh=True)
        protocol.write_frame(
            second._sock,
            {
                "type": protocol.EXECUTE,
                "id": 5,
                "handle": prepared.handle,
                "args": [2],
            },
        )
        assert protocol.read_frame(second._sock)["code"] == protocol.ERR_MALFORMED
        first.close()
        second.close()


def reduced_policy_text() -> str:
    policy = calendar_app.ground_truth_policy()
    return policy_to_text(
        Policy([v for v in policy.views if v.name != "V2"], name="minus-V2")
    )


class TestReloadStaleness:
    def test_stale_handle_is_refused_with_stale_flag(self, lifecycle_server):
        background, gateway = lifecycle_server
        connection = connect(background)
        prepared = connection.prepare("SELECT EId FROM Attendance WHERE UId = ?")
        with AdminClient(background.host, background.port, timeout_s=30.0) as operator:
            operator.reload(reduced_policy_text(), provenance="patched")
        assert gateway.policy_version == 2
        # Raw EXECUTE on the old handle: refused, flagged stale.
        protocol.write_frame(
            connection._sock,
            {
                "type": protocol.EXECUTE,
                "id": 99,
                "handle": prepared.handle,
                "args": [1],
            },
        )
        reply = protocol.read_frame(connection._sock)
        assert reply["code"] == protocol.ERR_MALFORMED
        assert reply["stale"] is True
        assert background.server.metrics.counter("prepared_stale") == 1
        connection.close()

    def test_client_reprepares_transparently_across_reload(self, lifecycle_server):
        background, gateway = lifecycle_server
        connection = connect(background)
        prepared = connection.prepare("SELECT EId FROM Attendance WHERE UId = ?")
        before = connection.execute(prepared, [1])
        old_handle = prepared.handle
        with AdminClient(background.host, background.port, timeout_s=30.0) as operator:
            operator.reload(reduced_policy_text(), provenance="patched")
        # One call: the client sees the stale refusal, re-prepares, and
        # retries — the caller just gets rows.
        after = connection.execute(prepared, [1])
        assert sorted(after.rows) == sorted(before.rows)
        assert prepared.handle != old_handle
        assert prepared.policy_version == gateway.policy_version
        connection.close()
