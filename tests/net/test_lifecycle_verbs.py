"""Policy-lifecycle admin verbs over a real socket.

Runs the full operator loop — POLICY / RELOAD / SHADOW / PROMOTE /
ROLLBACK — through :class:`~repro.net.client.AdminClient` against a live
:class:`~repro.net.server.BackgroundServer` with a
:class:`~repro.lifecycle.LifecycleManager` attached, while an ordinary
session client generates the shadow traffic.
"""

from __future__ import annotations

import pytest

from repro.enforce.decision import PolicyViolation
from repro.lifecycle import GateConfig, LifecycleManager
from repro.net import AdminClient, BackgroundServer, NetClientConnection, NetError, ServerConfig
from repro.policy.policy import Policy
from repro.policy.serialize import policy_to_text
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


@pytest.fixture
def stack():
    """(background server, gateway, lifecycle) wired together."""
    app = calendar_app.make_app()
    db = app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    gateway = EnforcementGateway(db, app.ground_truth_policy(), GatewayConfig())
    lifecycle = LifecycleManager(gateway, gates=GateConfig(min_shadow_checks=3))
    with BackgroundServer(
        gateway, ServerConfig(port=0), lifecycle=lifecycle
    ) as background:
        yield background, gateway, lifecycle


def admin(background) -> AdminClient:
    return AdminClient(background.host, background.port, timeout_s=30.0)


def reduced_text() -> str:
    policy = calendar_app.ground_truth_policy()
    return policy_to_text(
        Policy([v for v in policy.views if v.name != "V2"], name="minus-V2")
    )


def full_text() -> str:
    return policy_to_text(calendar_app.ground_truth_policy())


class TestPolicyStatus:
    def test_status_reports_boot_version(self, stack):
        background, _, _ = stack
        with admin(background) as client:
            status = client.policy_status()
        assert status["active_version"] == 1
        assert status["provenance"] == "hand-written"
        assert status["views"] == 4
        assert status["rollback_target"] is None

    def test_stats_carries_the_policy_section(self, stack):
        background, _, _ = stack
        with admin(background) as client:
            stats = client.stats()
        assert stats["policy"]["active_version"] == 1


class TestReloadVerb:
    def test_reload_swaps_and_reports(self, stack):
        background, gateway, _ = stack
        with admin(background) as client:
            report = client.reload(reduced_text(), provenance="patched")
            assert (report["old_version"], report["new_version"]) == (1, 2)
            assert report["drained"] is True
            assert client.policy_status()["active_version"] == 2
        assert gateway.policy_version == 2
        assert "V2" not in gateway.policy

    def test_reload_changes_wire_decisions_without_reconnecting(self, stack):
        background, _, _ = stack
        session = NetClientConnection(background.host, background.port, user=1)
        session.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        assert not session.query("SELECT * FROM Events WHERE EId = 2").is_empty()
        with admin(background) as client:
            client.reload(reduced_text())
        with pytest.raises(PolicyViolation):
            session.query("SELECT * FROM Events WHERE EId = 2")
        session.close()

    def test_bad_policy_text_reports_the_line(self, stack):
        background, gateway, _ = stack
        with admin(background) as client:
            with pytest.raises(NetError) as excinfo:
                client.reload("view broken\nview alsoBroken\n  SELECT 1 FROM Events")
            assert "line 1" in str(excinfo.value)
        assert gateway.policy_version == 1  # nothing swapped

    def test_empty_policy_text_is_a_bad_request(self, stack):
        background, _, _ = stack
        with admin(background) as client:
            with pytest.raises(NetError, match="policy_text"):
                client.reload("   ")


class TestShadowAndPromoteVerbs:
    def test_full_shadow_promote_rollback_loop(self, stack):
        background, gateway, _ = stack
        session = NetClientConnection(background.host, background.port, user=1)
        with admin(background) as client:
            started = client.shadow_start(full_text(), label="mined")
            assert started["candidate_version"] == 2
            for eid in range(1, 5):
                session.query(
                    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                )
            gateway.shadow.drain(timeout_s=20.0)
            status = client.shadow_status()
            assert status["checks"] >= 3 and status["divergences"] == 0
            promoted = client.promote()
            assert promoted["promoted"] is True
            assert client.policy_status()["active_version"] == 2
            report = client.rollback()
            assert report["new_version"] == 1
            assert client.policy_status()["active_version"] == 1
        session.close()

    def test_failed_promotion_returns_gates_and_diagnoses(self, stack):
        background, gateway, _ = stack
        session = NetClientConnection(background.host, background.port, user=1)
        with admin(background) as client:
            client.shadow_start(reduced_text(), label="regressed")
            session.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
            session.query("SELECT * FROM Events WHERE EId = 2")
            for eid in range(3, 6):
                session.query(
                    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                )
            gateway.shadow.drain(timeout_s=20.0)
            verdict = client.promote()
            assert verdict["promoted"] is False
            failed = [g for g in verdict["gates"] if not g["passed"]]
            assert any(g["name"] == "shadow" for g in failed)
            assert verdict["diagnoses"]
            # Shadow survives the rejection; stop it explicitly.
            stats = client.shadow_stop()
            assert stats["allow_to_block"] == 1
        session.close()

    def test_shadow_stop_without_start_is_an_error(self, stack):
        background, _, _ = stack
        with admin(background) as client:
            with pytest.raises(NetError, match="no shadow"):
                client.shadow_stop()
            assert client.shadow_status() is None

    def test_promote_gate_overrides_travel_the_wire(self, stack):
        background, gateway, _ = stack
        session = NetClientConnection(background.host, background.port, user=1)
        with admin(background) as client:
            client.shadow_start(full_text())
            session.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
            gateway.shadow.drain(timeout_s=20.0)
            # Default gate (min 3 checks) would reject one check; the
            # override lowers the floor and the promotion goes through.
            rejected = client.promote()
            assert rejected["promoted"] is False
            promoted = client.promote(min_shadow_checks=1)
            assert promoted["promoted"] is True
        session.close()


class TestWithoutLifecycle:
    def test_admin_verbs_fail_fast_when_not_configured(self):
        gateway = EnforcementGateway(
            calendar_app.make_database(size=5, seed=3),
            calendar_app.ground_truth_policy(),
            GatewayConfig(),
        )
        with BackgroundServer(gateway, ServerConfig(port=0)) as background:
            with admin(background) as client:
                with pytest.raises(NetError, match="lifecycle"):
                    client.policy_status()

    def test_stats_still_reports_the_active_version(self):
        gateway = EnforcementGateway(
            calendar_app.make_database(size=5, seed=3),
            calendar_app.ground_truth_policy(),
            GatewayConfig(),
        )
        with BackgroundServer(gateway, ServerConfig(port=0)) as background:
            with admin(background) as client:
                assert client.stats()["policy"] == {"active_version": 1}
