"""The MINE admin verb over a real socket.

Drives the continuous-mining loop — seeded gap, mining cycle, candidate
listing, approval — through :class:`~repro.net.client.AdminClient`
against a live :class:`~repro.net.server.BackgroundServer`, with an
ordinary session client generating the audit and shadow traffic.
"""

from __future__ import annotations

import pytest

from repro.lifecycle import GateConfig, LifecycleManager
from repro.mining import MiningConfig
from repro.net import (
    AdminClient,
    BackgroundServer,
    NetClientConnection,
    NetError,
    ServerConfig,
)
from repro.policy.policy import Policy
from repro.policy.serialize import policy_to_text
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


def make_stack(mode: str):
    app = calendar_app.make_app()
    db = app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    gateway = EnforcementGateway(
        db,
        app.ground_truth_policy(),
        GatewayConfig(mining=MiningConfig(min_window=4, mode=mode)),
    )
    lifecycle = LifecycleManager(gateway, gates=GateConfig(min_shadow_checks=3))
    return gateway, lifecycle


@pytest.fixture
def mining_stack():
    gateway, lifecycle = make_stack("propose_only")
    with BackgroundServer(
        gateway, ServerConfig(port=0), lifecycle=lifecycle
    ) as background:
        yield background, gateway, lifecycle
    lifecycle.mining.close()
    gateway.close()


def admin(background) -> AdminClient:
    return AdminClient(background.host, background.port, timeout_s=30.0)


def seed_gap_over_wire(background, client: AdminClient):
    """v1 traffic incl. a V2-justified read, then reload minus V2."""
    session = NetClientConnection(
        background.host, background.port, bindings={"MyUId": 1}
    )
    for eid in range(1, 6):
        session.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
    session.query("SELECT * FROM Events WHERE EId = 2")
    full = calendar_app.ground_truth_policy()
    reduced = Policy([v for v in full.views if v.name != "V2"], name="minus-V2")
    client.reload(policy_to_text(reduced), label="gapped")
    for eid in range(1, 4):
        session.query(f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}")
    return session


class TestMineVerb:
    def test_full_operator_loop_status_run_candidates_approve(self, mining_stack):
        background, gateway, lifecycle = mining_stack
        with admin(background) as client:
            status = client.mine_status()
            assert status["mode"] == "propose_only"
            assert status["cycles"] == 0

            session = seed_gap_over_wire(background, client)
            cycle = client.mine_run()
            assert len(cycle["mined"]) == 1
            (fingerprint,) = cycle["mined"]

            listing = client.mine_candidates()
            (candidate,) = listing["candidates"]
            assert candidate["fingerprint"] == fingerprint
            assert candidate["kind"] == "gap-fill"
            assert candidate["status"] == "parked"
            assert listing["audit"][0]["action"] == "mined"

            approved = client.mine_approve(fingerprint)
            assert approved["status"] == "shadowing"
            for eid in range(10, 16):
                session.query(
                    f"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = {eid}"
                )
            cycle = client.mine_run()
            assert cycle["progressed"]["action"] == "promoted"
            assert client.policy_status()["active_version"] == 3
            session.close()
        assert gateway.policy.meta["provenance"] == "mined"

    def test_stats_carries_the_mining_section(self, mining_stack):
        background, _, _ = mining_stack
        with admin(background) as client:
            stats = client.stats()
        assert stats["policy"]["mining"]["mode"] == "propose_only"

    def test_bad_action_and_missing_fingerprint_are_refused(self, mining_stack):
        background, _, _ = mining_stack
        with admin(background) as client:
            with pytest.raises(NetError, match="action"):
                client._call({"type": "MINE", "action": "bogus"})
            with pytest.raises(NetError, match="fingerprint"):
                client._call({"type": "MINE", "action": "approve"})
            with pytest.raises(NetError, match="no mined candidate"):
                client.mine_approve("feedfacedeadbeef")


class TestWithoutMining:
    def test_mine_without_a_service_is_a_clean_error(self):
        app = calendar_app.make_app()
        db = app.make_database(size=10, seed=3)
        gateway = EnforcementGateway(db, app.ground_truth_policy(), GatewayConfig())
        lifecycle = LifecycleManager(gateway)
        with BackgroundServer(
            gateway, ServerConfig(port=0), lifecycle=lifecycle
        ) as background:
            with admin(background) as client:
                with pytest.raises(NetError, match="no mining service"):
                    client.mine_status()
        gateway.close()
