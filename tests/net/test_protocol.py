"""Framing and message hygiene for the wire protocol."""

from __future__ import annotations

import struct

import pytest

from repro.net import protocol
from repro.net.protocol import (
    FrameTooLarge,
    NetError,
    decode_payload,
    encode_frame,
)


class TestFraming:
    def test_roundtrip(self):
        message = {"type": "QUERY", "id": 3, "sql": "SELECT 1", "args": [1, "x", None]}
        frame = encode_frame(message)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == message

    def test_unicode_survives(self):
        message = {"type": "EXEC", "sql": "SELECT 'héllo — ünïcode'"}
        frame = encode_frame(message)
        assert decode_payload(frame[4:]) == message

    def test_length_counts_payload_bytes_not_characters(self):
        frame = encode_frame({"type": "PING", "note": "é" * 10})
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame[4:])  # UTF-8 bytes, not code points


class TestPayloadHygiene:
    def test_invalid_json_is_malformed(self):
        with pytest.raises(NetError) as excinfo:
            decode_payload(b"{not json")
        assert excinfo.value.code == protocol.ERR_MALFORMED

    def test_non_object_payload_is_malformed(self):
        with pytest.raises(NetError) as excinfo:
            decode_payload(b"[1, 2, 3]")
        assert excinfo.value.code == protocol.ERR_MALFORMED

    def test_missing_type_is_malformed(self):
        with pytest.raises(NetError) as excinfo:
            decode_payload(b'{"id": 1}')
        assert excinfo.value.code == protocol.ERR_MALFORMED

    def test_non_utf8_is_malformed(self):
        with pytest.raises(NetError) as excinfo:
            decode_payload(b"\xff\xfe\x00")
        assert excinfo.value.code == protocol.ERR_MALFORMED


class TestLimits:
    def test_frame_too_large_carries_sizes(self):
        error = FrameTooLarge(declared=5000, limit=1024)
        assert error.code == protocol.ERR_OVERSIZED
        assert error.declared == 5000 and error.limit == 1024

    def test_version_is_an_integer(self):
        assert isinstance(protocol.PROTOCOL_VERSION, int)
