"""Bounded-backoff connect retry (`connect_with_retry`)."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.net.client import NetClientConnection, connect_with_retry
from repro.net.server import BackgroundServer, ServerConfig
from tests.net.test_client_server import make_gateway


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestConnectWithRetry:
    def test_rides_out_a_late_starting_listener(self):
        """The exact race a shard subprocess loses: client dials first."""
        port = _free_port()
        listener = socket.socket()
        accepted = threading.Event()

        def open_late():
            time.sleep(0.15)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)
            listener.accept()
            accepted.set()

        thread = threading.Thread(target=open_late, daemon=True)
        thread.start()
        try:
            sock = connect_with_retry("127.0.0.1", port, timeout_s=5.0)
            sock.close()
            thread.join(timeout=5)
            assert accepted.is_set()
        finally:
            listener.close()

    def test_exhausted_retries_reraise_the_original_error(self):
        port = _free_port()  # nothing listens here
        started = time.monotonic()
        with pytest.raises(OSError):
            connect_with_retry(
                "127.0.0.1", port, timeout_s=1.0, retries=2, retry_base_s=0.01
            )
        # 2 retries at ~10/20 ms: the whole schedule stays fast.
        assert time.monotonic() - started < 2.0

    def test_zero_retries_fail_immediately(self):
        port = _free_port()
        with pytest.raises(OSError):
            connect_with_retry("127.0.0.1", port, timeout_s=1.0, retries=0)

    def test_malformed_address_fails_fast_without_retrying(self, monkeypatch):
        """gaierror (name resolution) is misconfiguration, not a race:
        one attempt, no backoff sleeps, error type preserved."""
        attempts = []

        def refuse_resolution(address, timeout=None):
            attempts.append(address)
            raise socket.gaierror(socket.EAI_NONAME, "Name or service not known")

        monkeypatch.setattr(socket, "create_connection", refuse_resolution)
        started = time.monotonic()
        with pytest.raises(socket.gaierror):
            connect_with_retry(
                "no-such-host.invalid", 1, timeout_s=1.0, retries=4, retry_base_s=0.2
            )
        assert len(attempts) == 1
        # No retry schedule was consumed (4 retries at 0.2s base would
        # have slept well over a second).
        assert time.monotonic() - started < 0.2

    def test_transient_connection_errors_still_retry(self, monkeypatch):
        attempts = []

        def refuse_then_accept(address, timeout=None):
            attempts.append(address)
            if len(attempts) < 3:
                raise ConnectionRefusedError("nobody home yet")
            return object()  # stands in for the socket

        monkeypatch.setattr(socket, "create_connection", refuse_then_accept)
        assert connect_with_retry(
            "127.0.0.1", 1, timeout_s=1.0, retries=4, retry_base_s=0.001
        ) is not None
        assert len(attempts) == 3

    def test_client_connects_through_retry_to_real_server(self):
        """NetClientConnection inherits the retry patience end to end."""
        gateway = make_gateway()
        port = _free_port()
        holder = {}

        def start_late():
            time.sleep(0.15)
            holder["server"] = BackgroundServer(
                gateway, ServerConfig(port=port)
            ).start()

        thread = threading.Thread(target=start_late, daemon=True)
        thread.start()
        try:
            connection = NetClientConnection("127.0.0.1", port, user=1)
            connection.ping()
            connection.close()
        finally:
            thread.join(timeout=5)
            if "server" in holder:
                holder["server"].stop()
            gateway.close()
