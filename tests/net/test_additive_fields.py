"""Additive WELCOME/STATS fields: shard identity and uptime.

These ride on PROTOCOL_VERSION 1 — servers add them, old clients ignore
them — so a lone gateway and a cluster shard speak the same protocol.
"""

from __future__ import annotations

from repro.net import protocol
from repro.net.client import AdminClient, NetClientConnection
from repro.net.server import BackgroundServer, ServerConfig
from tests.net.test_client_server import make_gateway


class TestShardIdentity:
    def test_welcome_and_stats_carry_shard_id_when_configured(self):
        gateway = make_gateway()
        with BackgroundServer(gateway, ServerConfig(port=0, shard_id=5)) as server:
            connection = NetClientConnection("127.0.0.1", server.port, user=1)
            assert connection.server_shard_id == 5
            connection.close()
            admin = AdminClient("127.0.0.1", server.port)
            stats = admin.stats()
            admin.close()
            assert stats["shard_id"] == 5
            assert stats["uptime_s"] > 0
        gateway.close()

    def test_fields_absent_outside_a_cluster(self):
        gateway = make_gateway()
        with BackgroundServer(gateway, ServerConfig(port=0)) as server:
            connection = NetClientConnection("127.0.0.1", server.port, user=1)
            assert connection.server_shard_id is None
            connection.close()
            admin = AdminClient("127.0.0.1", server.port)
            stats = admin.stats()
            admin.close()
            assert "shard_id" not in stats
            assert stats["uptime_s"] > 0  # uptime is always reported
        gateway.close()

    def test_protocol_version_unchanged(self):
        assert protocol.PROTOCOL_VERSION == 1
