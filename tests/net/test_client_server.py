"""End-to-end wire tests: a real server on a real socket.

Every test here runs the full stack — asyncio server, thread-pool
dispatch into the enforcement gateway, blocking client — over a
loopback TCP connection bound to an ephemeral port.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.enforce.decision import PolicyViolation
from repro.net import (
    BackgroundServer,
    NetClientConnection,
    NetError,
    ServerConfig,
    protocol,
)
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


def make_gateway(**config) -> EnforcementGateway:
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.make_app().ground_truth_policy()
    return EnforcementGateway(db, policy, GatewayConfig(**config))


@pytest.fixture
def server():
    with BackgroundServer(make_gateway(), ServerConfig(port=0)) as background:
        yield background


def connect(background: BackgroundServer, **kwargs) -> NetClientConnection:
    kwargs.setdefault("user", 1)
    return NetClientConnection(background.host, background.port, **kwargs)


def raw_socket(background: BackgroundServer) -> socket.socket:
    sock = socket.create_connection((background.host, background.port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


class TestEndToEnd:
    def test_e1_calendar_trace_over_the_wire(self, server):
        """Example 2.1 end to end: history gates Q2, exactly as in-process."""
        connection = connect(server)
        q1 = connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        assert len(q1) == 1
        q2 = connection.query("SELECT * FROM Events WHERE EId = 2")
        assert not q2.is_empty()
        # A fresh session has no history: the same Q2 must be blocked.
        fresh = connect(server, fresh=True)
        with pytest.raises(PolicyViolation) as excinfo:
            fresh.query("SELECT * FROM Events WHERE EId = 2")
        assert not excinfo.value.decision.allowed
        assert "Events" in excinfo.value.decision.sql
        connection.close()
        fresh.close()

    def test_reconnecting_resumes_the_session_trace(self, server):
        first = connect(server)
        first.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
        first.close()
        # Same principal, new wire connection: the trace carries over.
        second = connect(server)
        assert not second.query("SELECT * FROM Events WHERE EId = 2").is_empty()
        second.close()

    def test_writes_return_rowcounts_and_invalidate(self, server):
        connection = connect(server)
        connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        count = connection.sql("UPDATE Events SET Title = Title")
        assert isinstance(count, int) and count > 0
        assert server.server.gateway.metrics.counter("writes") == 1
        connection.close()

    def test_result_values_and_positional_args_survive_the_wire(self, server):
        connection = connect(server)
        result = connection.query(
            "SELECT EId FROM Attendance WHERE UId = ?", [1]
        )
        assert result.columns == ["EId"]
        assert all(isinstance(row, tuple) for row in result.rows)
        connection.close()

    def test_ping_and_stats(self, server):
        connection = connect(server)
        assert connection.ping() < 5.0
        connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        stats = connection.stats()
        assert stats["net"]["counters"]["requests_ok"] >= 1
        assert "gateway" in stats and "cache_hit_rate" in stats
        assert stats["net"]["active_connections"] >= 1
        connection.close()

    def test_engine_errors_come_back_as_engine_code(self, server):
        connection = connect(server)
        with pytest.raises(NetError) as excinfo:
            connection.query("THIS IS NOT SQL")
        assert excinfo.value.code == protocol.ERR_ENGINE
        # The connection survives an engine error.
        assert connection.ping() < 5.0
        connection.close()


class TestHandshake:
    def test_statement_before_hello_is_unauthenticated(self, server):
        sock = raw_socket(server)
        protocol.write_frame(
            sock, {"type": protocol.QUERY, "id": 1, "sql": "SELECT 1 FROM Events"}
        )
        reply = protocol.read_frame(sock)
        assert reply["code"] == protocol.ERR_UNAUTHENTICATED
        sock.close()

    def test_version_mismatch_is_rejected(self, server):
        sock = raw_socket(server)
        protocol.write_frame(
            sock,
            {"type": protocol.HELLO, "version": 999, "bindings": {"MyUId": 1}},
        )
        assert protocol.read_frame(sock)["code"] == protocol.ERR_BAD_VERSION
        sock.close()

    def test_hello_requires_bindings(self, server):
        sock = raw_socket(server)
        protocol.write_frame(
            sock,
            {"type": protocol.HELLO, "version": protocol.PROTOCOL_VERSION},
        )
        assert protocol.read_frame(sock)["code"] == protocol.ERR_BAD_REQUEST
        sock.close()

    def test_double_hello_is_rejected(self, server):
        connection = connect(server)
        protocol.write_frame(
            connection._sock,
            {
                "type": protocol.HELLO,
                "version": protocol.PROTOCOL_VERSION,
                "bindings": {"MyUId": 2},
            },
        )
        reply = protocol.read_frame(connection._sock)
        assert reply["code"] == protocol.ERR_BAD_REQUEST
        connection.close()


class TestFrameHygiene:
    def test_oversized_frame_is_rejected_from_the_prefix(self):
        gateway = make_gateway()
        with BackgroundServer(gateway, ServerConfig(port=0, max_frame_bytes=128)) as bg:
            sock = raw_socket(bg)
            sock.sendall(struct.pack(">I", 1 << 16))  # no payload needed
            reply = protocol.read_frame(sock)
            assert reply["code"] == protocol.ERR_OVERSIZED
            assert bg.server.metrics.counter("frames_oversized") == 1
            sock.close()

    def test_malformed_payload_is_rejected_and_closed(self, server):
        sock = raw_socket(server)
        garbage = b"this is not json"
        sock.sendall(struct.pack(">I", len(garbage)) + garbage)
        reply = protocol.read_frame(sock)
        assert reply["code"] == protocol.ERR_MALFORMED
        # The server closes after a framing violation.
        assert sock.recv(1) == b""
        sock.close()

    def test_unknown_message_type_keeps_the_connection(self, server):
        connection = connect(server)
        protocol.write_frame(connection._sock, {"type": "FROBNICATE", "id": 9})
        reply = protocol.read_frame(connection._sock)
        assert reply["code"] == protocol.ERR_BAD_REQUEST
        assert connection.ping() < 5.0  # still alive
        connection.close()


class TestAdmissionControl:
    def test_connection_limit_refuses_with_overloaded(self):
        with BackgroundServer(make_gateway(), ServerConfig(port=0, max_connections=1)) as bg:
            keeper = connect(bg)
            with pytest.raises(NetError) as excinfo:
                connect(bg, user=2)
            assert excinfo.value.code == protocol.ERR_OVERLOADED
            assert bg.server.metrics.counter("connections_rejected") == 1
            keeper.close()

    def test_in_flight_bound_sheds_instead_of_queueing(self):
        config = ServerConfig(port=0, max_in_flight=1, execute_delay_s=0.4)
        with BackgroundServer(make_gateway(), config) as bg:
            busy = connect(bg, user=1)
            other = connect(bg, user=2)
            finished = {}

            def slow():
                finished["result"] = busy.query("SELECT EId FROM Attendance WHERE UId = 1")

            thread = threading.Thread(target=slow)
            thread.start()
            time.sleep(0.15)  # the slow statement now occupies the only slot
            shed_started = time.perf_counter()
            with pytest.raises(NetError) as excinfo:
                other.query("SELECT EId FROM Attendance WHERE UId = 2")
            shed_latency = time.perf_counter() - shed_started
            thread.join()
            assert excinfo.value.code == protocol.ERR_OVERLOADED
            assert shed_latency < 0.2, "shedding must not wait for the busy slot"
            assert bg.server.metrics.counter("requests_shed") == 1
            # The admitted statement still completed normally.
            assert finished["result"].columns == ["EId"]
            # Once the slot frees, the shed client's retry succeeds.
            assert other.query("SELECT EId FROM Attendance WHERE UId = 2") is not None
            busy.close()
            other.close()


class TestDeadlines:
    def test_deadline_overrun_errors_and_closes(self):
        config = ServerConfig(port=0, request_timeout_s=0.05, execute_delay_s=0.5)
        with BackgroundServer(make_gateway(), config) as bg:
            connection = connect(bg)
            with pytest.raises(NetError) as excinfo:
                connection.query("SELECT EId FROM Attendance WHERE UId = 1")
            assert excinfo.value.code == protocol.ERR_TIMEOUT
            assert connection.closed  # the session may still be busy server-side
            assert bg.server.metrics.counter("requests_timed_out") == 1

    def test_orphaned_statement_releases_its_slot(self):
        config = ServerConfig(
            port=0, max_in_flight=1, request_timeout_s=0.05, execute_delay_s=0.3
        )
        with BackgroundServer(make_gateway(), config) as bg:
            victim = connect(bg, user=1)
            with pytest.raises(NetError):
                victim.query("SELECT EId FROM Attendance WHERE UId = 1")
            # Wait for the orphan to finish; the slot must come back.
            deadline = time.time() + 5.0
            while bg.server.metrics.in_flight and time.time() < deadline:
                time.sleep(0.02)
            assert bg.server.metrics.in_flight == 0
            # With the slot reclaimed, a new statement is admitted: it hits
            # the (injected) deadline, not the overloaded shed path.
            fresh = connect(bg, user=2)
            with pytest.raises(NetError) as followup:
                fresh.query("SELECT EId FROM Attendance WHERE UId = 2")
            assert followup.value.code == protocol.ERR_TIMEOUT


class TestIdleReaping:
    def test_idle_connection_gets_bye(self):
        with BackgroundServer(make_gateway(), ServerConfig(port=0, idle_timeout_s=0.1)) as bg:
            connection = connect(bg)
            time.sleep(0.3)
            reply = protocol.read_frame(connection._sock)
            assert reply == {"type": protocol.BYE, "reason": "idle"}
            assert bg.server.metrics.counter("idle_reaped") == 1
            connection.close()

    def test_active_connection_is_not_reaped(self):
        with BackgroundServer(make_gateway(), ServerConfig(port=0, idle_timeout_s=0.4)) as bg:
            connection = connect(bg)
            for _ in range(4):
                time.sleep(0.15)
                assert connection.ping() < 5.0
            connection.close()


class TestGracefulDrain:
    def test_drain_finishes_in_flight_and_delivers_every_reply(self):
        config = ServerConfig(port=0, execute_delay_s=0.25, max_in_flight=8)
        background = BackgroundServer(make_gateway(), config).start()
        replies: dict[int, object] = {}
        connections = [connect(background, user=uid) for uid in (1, 2, 3)]

        def issue(index: int, connection: NetClientConnection, uid: int) -> None:
            replies[index] = connection.query(
                "SELECT EId FROM Attendance WHERE UId = ?", [uid]
            )

        threads = [
            threading.Thread(target=issue, args=(i, conn, uid))
            for i, (conn, uid) in enumerate(zip(connections, (1, 2, 3)))
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # all three statements now in flight
        background.stop()  # graceful drain
        for thread in threads:
            thread.join()
        # Zero dropped replies: every in-flight statement got its RESULT.
        assert sorted(replies) == [0, 1, 2]
        for reply in replies.values():
            assert reply.columns == ["EId"]

    def test_connections_arriving_during_drain_are_refused(self):
        config = ServerConfig(port=0, execute_delay_s=0.4)
        background = BackgroundServer(make_gateway(), config).start()
        connection = connect(background)
        thread = threading.Thread(
            target=lambda: connection.query("SELECT EId FROM Attendance WHERE UId = 1")
        )
        thread.start()
        time.sleep(0.1)
        stopper = threading.Thread(target=background.stop)
        stopper.start()
        time.sleep(0.05)  # drain has begun; listener is closed
        with pytest.raises((NetError, OSError)):
            connect(background, user=2)
        thread.join()
        stopper.join()

    def test_idle_connections_get_bye_on_drain(self):
        background = BackgroundServer(make_gateway(), ServerConfig(port=0)).start()
        connection = connect(background)
        stopper = threading.Thread(target=background.stop)
        stopper.start()
        reply = protocol.read_frame(connection._sock)
        assert reply == {"type": protocol.BYE, "reason": "shutting down"}
        stopper.join()
        connection.close()


class TestClientLifecycle:
    def test_close_is_idempotent(self, server):
        connection = connect(server)
        connection.close()
        connection.close()
        assert connection.closed

    def test_use_after_close_raises(self, server):
        connection = connect(server)
        connection.close()
        with pytest.raises(Exception, match="closed"):
            connection.sql("SELECT EId FROM Attendance WHERE UId = 1")

    def test_goodbye_lets_the_server_account_the_close(self, server):
        connection = connect(server)
        connection.close()
        deadline = time.time() + 5.0
        while server.server.metrics.active_connections and time.time() < deadline:
            time.sleep(0.02)
        assert server.server.metrics.active_connections == 0
