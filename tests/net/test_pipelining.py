"""Frame pipelining: many requests in flight on one connection.

The contract under test: the server dispatches a connection's frames
strictly in arrival order (trace history accumulates exactly as in the
one-at-a-time mode) while reading ahead, replies come back in request
order, and the edge cases hold — interleaved replies correlate by id,
frames split across TCP reads reassemble, statements queued behind a
drain get ``ERROR/shutting_down``, and per-request failures don't
poison the rest of the pipeline.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.enforce.decision import PolicyViolation
from repro.engine.executor import Result
from repro.net import (
    BackgroundServer,
    NetClientConnection,
    NetError,
    ServerConfig,
    protocol,
)
from repro.serve import EnforcementGateway, GatewayConfig
from repro.workloads import calendar_app


def make_gateway(**config) -> EnforcementGateway:
    db = calendar_app.make_database(size=10, seed=3)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = calendar_app.make_app().ground_truth_policy()
    return EnforcementGateway(db, policy, GatewayConfig(**config))


@pytest.fixture
def server():
    with BackgroundServer(make_gateway(), ServerConfig(port=0)) as background:
        yield background


def connect(background: BackgroundServer, **kwargs) -> NetClientConnection:
    kwargs.setdefault("user", 1)
    return NetClientConnection(background.host, background.port, **kwargs)


class TestPipelineOrdering:
    def test_outcomes_come_back_in_request_order(self, server):
        connection = connect(server)
        uids = [1, 1, 1, 1]
        sequential = [
            connection.query("SELECT EId FROM Attendance WHERE UId = ?", [uid])
            for uid in uids
        ]
        outcomes = connection.pipeline(
            [("SELECT EId FROM Attendance WHERE UId = ?", [uid]) for uid in uids]
        )
        assert len(outcomes) == len(uids)
        for got, want in zip(outcomes, sequential):
            assert isinstance(got, Result)
            assert got.columns == want.columns
            assert sorted(got.rows) == sorted(want.rows)
        connection.close()

    def test_trace_history_accumulates_in_pipeline_order(self, server):
        """Example 2.1 inside one pipeline: the attendance probe is frame 1
        and the Events query frame 2 — history must admit frame 2 because
        the server dispatches strictly in arrival order."""
        connection = connect(server, fresh=True)
        outcomes = connection.pipeline(
            [
                ("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [1, 2]),
                ("SELECT * FROM Events WHERE EId = ?", [2]),
            ]
        )
        assert isinstance(outcomes[0], Result) and len(outcomes[0]) == 1
        assert isinstance(outcomes[1], Result) and not outcomes[1].is_empty()
        connection.close()

    def test_blocked_request_does_not_poison_the_pipeline(self, server):
        connection = connect(server, fresh=True)
        outcomes = connection.pipeline(
            [
                # An empty probe certifies nothing that could admit request 2.
                ("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [1, 999]),
                ("SELECT * FROM Events WHERE EId = ?", [2]),  # no history: blocked
                ("SELECT EId FROM Attendance WHERE UId = ?", [1]),
            ]
        )
        assert isinstance(outcomes[0], Result)
        assert isinstance(outcomes[1], PolicyViolation)
        assert isinstance(outcomes[2], Result)
        connection.close()

    def test_mixed_prepared_and_classic_requests(self, server):
        connection = connect(server)
        prepared = connection.prepare("SELECT EId FROM Attendance WHERE UId = ?")
        outcomes = connection.pipeline(
            [
                (prepared, [1]),
                ("SELECT EId FROM Attendance WHERE UId = ?", [1]),
                (prepared, [1]),
            ]
        )
        assert all(isinstance(outcome, Result) for outcome in outcomes)
        rows = [sorted(outcome.rows) for outcome in outcomes]
        assert rows[0] == rows[1] == rows[2]
        connection.close()

    def test_small_window_still_completes_everything(self, server):
        connection = connect(server)
        outcomes = connection.pipeline(
            [("SELECT EId FROM Attendance WHERE UId = ?", [1])] * 9, window=2
        )
        assert len(outcomes) == 9
        assert all(isinstance(outcome, Result) for outcome in outcomes)
        connection.close()

    def test_bad_window_is_rejected(self, server):
        connection = connect(server)
        with pytest.raises(ValueError):
            connection.pipeline(["SELECT 1 FROM Events"], window=0)
        connection.close()


class TestPartialFrames:
    def test_frame_split_across_many_tcp_writes_reassembles(self, server):
        """The reader must treat the byte stream as a stream: a frame
        dribbled in 1-byte writes parses identically to one sendall."""
        sock = socket.create_connection((server.host, server.port), timeout=5.0)
        sock.settimeout(5.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = protocol.encode_frame(
            {
                "type": protocol.HELLO,
                "version": protocol.PROTOCOL_VERSION,
                "bindings": {"MyUId": 1},
            }
        )
        # Split the HELLO mid-length-prefix and mid-payload.
        for chunk in (hello[:2], hello[2:7], hello[7:]):
            sock.sendall(chunk)
            time.sleep(0.02)
        assert protocol.read_frame(sock)["type"] == protocol.WELCOME
        query = protocol.encode_frame(
            {
                "type": protocol.QUERY,
                "id": 1,
                "sql": "SELECT EId FROM Attendance WHERE UId = ?",
                "args": [1],
            }
        )
        for byte in query:  # worst case: one byte per segment
            sock.sendall(bytes([byte]))
        reply = protocol.read_frame(sock)
        assert reply["type"] == protocol.RESULT and reply["id"] == 1
        sock.close()

    def test_two_frames_in_one_write_both_answered(self, server):
        """The inverse split: coalesced client writes must yield two
        replies, in order."""
        connection = connect(server)
        first = protocol.encode_frame(
            {
                "type": protocol.QUERY,
                "id": 11,
                "sql": "SELECT EId FROM Attendance WHERE UId = ?",
                "args": [1],
            }
        )
        second = protocol.encode_frame({"type": protocol.PING, "id": 12})
        connection._sock.sendall(first + second)
        assert protocol.read_frame(connection._sock)["id"] == 11
        assert protocol.read_frame(connection._sock)["id"] == 12
        connection.close()


class TestDrainDuringPipeline:
    def test_queued_statements_get_shutting_down_then_bye(self):
        """Statements already read ahead when the drain starts must be
        answered ERR_SHUTTING_DOWN (not silently dropped), then BYE."""
        config = ServerConfig(port=0, execute_delay_s=0.3)
        background = BackgroundServer(make_gateway(), config).start()
        try:
            connection = connect(background)
            frames = bytearray()
            for request_id in (1, 2, 3):
                protocol.encode_frame_into(
                    {
                        "type": protocol.QUERY,
                        "id": request_id,
                        "sql": "SELECT EId FROM Attendance WHERE UId = ?",
                        "args": [1],
                    },
                    frames,
                )
            connection._sock.sendall(bytes(frames))
            time.sleep(0.1)  # frame 1 is executing; 2 and 3 are queued
            stopper = threading.Thread(target=background.stop)
            stopper.start()
            first = protocol.read_frame(connection._sock)
            assert first["type"] == protocol.RESULT and first["id"] == 1
            for request_id in (2, 3):
                reply = protocol.read_frame(connection._sock)
                assert reply["type"] == protocol.ERROR
                assert reply["code"] == protocol.ERR_SHUTTING_DOWN
                assert reply["id"] == request_id
            assert protocol.read_frame(connection._sock)["type"] == protocol.BYE
            stopper.join()
            connection._sock.close()
        finally:
            background.stop()

    def test_pipeline_call_surfaces_drain_errors_per_request(self):
        config = ServerConfig(port=0, execute_delay_s=0.3)
        background = BackgroundServer(make_gateway(), config).start()
        try:
            connection = connect(background)
            outcomes_box = {}

            def run() -> None:
                outcomes_box["outcomes"] = connection.pipeline(
                    [("SELECT EId FROM Attendance WHERE UId = ?", [1])] * 3
                )

            worker = threading.Thread(target=run)
            worker.start()
            time.sleep(0.1)
            background.stop()
            worker.join()
            outcomes = outcomes_box["outcomes"]
            assert isinstance(outcomes[0], Result)
            shed = [o for o in outcomes[1:] if isinstance(o, NetError)]
            assert shed and all(
                o.code == protocol.ERR_SHUTTING_DOWN for o in shed
            )
        finally:
            background.stop()


class TestReadAheadOverlap:
    def test_server_reads_ahead_while_a_statement_executes(self):
        """With an injected 0.2s execute delay, three pipelined requests
        must take ~1x the delay + ~3x, not 3 round trips of client think
        time: the wall clock bound proves requests 2 and 3 were already
        server-side while request 1 executed."""
        config = ServerConfig(port=0, execute_delay_s=0.2)
        with BackgroundServer(make_gateway(), config) as background:
            connection = connect(background)
            started = time.perf_counter()
            outcomes = connection.pipeline(
                [("SELECT EId FROM Attendance WHERE UId = ?", [1])] * 3
            )
            elapsed = time.perf_counter() - started
            assert all(isinstance(outcome, Result) for outcome in outcomes)
            # Sequential with delay would be >= 0.6s of server time plus 3
            # full round trips; pipelined still pays 3 * delay (statements
            # are serialized per session) but zero extra think-time gaps.
            assert elapsed < 1.5
            # The real assertion: all three frames were accepted before the
            # first reply was written (the pipeline sent them in one burst).
            connection.close()
