"""Patch-generation tests: narrowing, abduction, and validation."""

import pytest

from repro.diagnose.abduce import access_check_patches
from repro.diagnose.rewrite import narrowing_patches
from repro.relalg.containment import cq_contained_in
from repro.relalg.translate import translate_select
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.sqlir.printer import to_sql


def tr1(sql, schema):
    return translate_select(parse_select(sql), schema).disjuncts[0]


class TestNarrowing:
    def test_q2_narrowed_to_attended(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        sql = "SELECT * FROM Events WHERE EId = 2"
        query = tr1(sql, calendar_schema)
        patches = narrowing_patches(query, sql, views, calendar_schema)
        assert patches
        patch = patches[0]
        # The narrowed query joins in the Attendance check.
        assert "Attendance" in patch.narrowed_sql
        narrowed_cq = tr1(patch.narrowed_sql, calendar_schema)
        assert cq_contained_in(narrowed_cq, query)

    def test_narrowed_patch_validates(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        sql = "SELECT * FROM Events WHERE EId = 2"
        query = tr1(sql, calendar_schema)
        patches = narrowing_patches(query, sql, views, calendar_schema)
        assert any(
            patch.validates({"MyUId": 1}, calendar_policy, calendar_schema)
            for patch in patches
        )

    def test_no_patch_when_nothing_contained(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        sql = "SELECT PId, Disease FROM PatientConditions"
        # A relation no calendar view mentions.
        query = tr1("SELECT Name FROM Users WHERE UId = 77", calendar_schema)
        patches = narrowing_patches(query, "q", views, calendar_schema)
        # Narrowing to "my own row" is only possible when uid = 77 = MyUId;
        # with MyUId = 1 the views are over user 1, so the only contained
        # rewriting would be unsatisfiable and must be filtered out.
        for patch in patches:
            narrowed = tr1(patch.narrowed_sql, calendar_schema)
            assert cq_contained_in(narrowed, query)

    def test_patch_description_shows_diff(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        sql = "SELECT * FROM Events WHERE EId = 2"
        query = tr1(sql, calendar_schema)
        patch = narrowing_patches(query, sql, views, calendar_schema)[0]
        text = patch.describe()
        assert sql in text
        assert patch.narrowed_sql in text


class TestAbduction:
    def test_paper_example_check_synthesized(self, calendar_schema, calendar_policy):
        """§5.2.2: the synthesized check for Q2 alone is the paper's
        "Attendance contains row (UId=1, EId=2)"."""
        views = calendar_policy.view_defs({"MyUId": 1})
        query = tr1("SELECT * FROM Events WHERE EId = 2", calendar_schema)
        patches = access_check_patches(query, views, calendar_schema)
        assert patches
        sqls = [patch.check_sql for patch in patches]
        assert any("Attendance" in sql and "= 1" in sql and "= 2" in sql for sql in sqls)

    def test_patch_validates_via_replay(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        query = tr1("SELECT * FROM Events WHERE EId = 2", calendar_schema)
        stmt = bind_parameters(parse_select("SELECT * FROM Events WHERE EId = ?"), [2])
        patches = access_check_patches(query, views, calendar_schema)
        assert any(
            patch.validates(stmt, {"MyUId": 1}, calendar_policy, calendar_schema)
            for patch in patches
        )

    def test_no_check_for_untouched_relation(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        # Users table of someone else: no view remainder helps.
        query = tr1("SELECT Name FROM Users WHERE UId = 77", calendar_schema)
        patches = access_check_patches(query, views, calendar_schema)
        for patch in patches:
            # Whatever is found must have validated, i.e. genuinely makes
            # the query compliant; for user 77 under MyUId=1 none should.
            assert False, f"unexpected patch {patch.check_sql}"

    def test_existing_facts_not_resuggested(self, calendar_schema, calendar_policy):
        from repro.relalg.cq import Atom, Const

        views = calendar_policy.view_defs({"MyUId": 1})
        query = tr1("SELECT * FROM Events WHERE EId = 2", calendar_schema)
        fact = Atom("Attendance", (Const(1), Const(2)))
        # With the fact already certified the query is compliant; the
        # generator may return nothing or redundant checks — but anything
        # returned must still validate.
        patches = access_check_patches(
            query, views, calendar_schema, existing_facts=[fact]
        )
        stmt = bind_parameters(parse_select("SELECT * FROM Events WHERE EId = ?"), [2])
        for patch in patches:
            assert patch.validates(stmt, {"MyUId": 1}, calendar_policy, calendar_schema)
