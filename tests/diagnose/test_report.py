"""End-to-end diagnosis tests (§5.2's triage heuristic included)."""

import pytest

from repro.diagnose import diagnose
from repro.policy import Policy, View
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select


def bound(sql, args=()):
    return bind_parameters(parse_select(sql), list(args))


class TestAppBugCase:
    """Q2 issued without its check: the application is the culprit."""

    @pytest.fixture
    def report(self, calendar_schema, calendar_policy):
        stmt = bound("SELECT * FROM Events WHERE EId = ?", [2])
        return diagnose(stmt, {"MyUId": 1}, calendar_policy, calendar_schema)

    def test_counterexample_found(self, report):
        assert report.counterexample is not None

    def test_all_three_patch_kinds(self, report):
        assert report.policy_patches
        assert report.narrowing_patches
        assert report.access_check_patches

    def test_policy_patch_flagged_broad(self, report):
        assert report.policy_patches[0].looks_broad

    def test_verdict_blames_application(self, report):
        assert "application" in report.verdict

    def test_describe_renders_everything(self, report):
        text = report.describe()
        assert "diagnosis" in text
        assert "counterexample" in text
        assert "access-check patch" in text


class TestPolicyGapCase:
    """A policy missing the self-profile view: the policy is the culprit."""

    @pytest.fixture
    def report(self, calendar_schema, calendar_policy):
        gapped = Policy(
            [v for v in calendar_policy.views if v.name != "V3"],
            name="gapped",
        )
        stmt = bound("SELECT * FROM Users WHERE UId = ?", [1])
        return diagnose(stmt, {"MyUId": 1}, gapped, calendar_schema)

    def test_policy_patch_found_and_narrow(self, report):
        assert report.policy_patches
        assert not report.policy_patches[0].looks_broad
        # The generated view is parameterized by the session user.
        view = report.policy_patches[0].add_views[0]
        assert view.param_names == ["MyUId"]

    def test_verdict_mentions_policy(self, report):
        assert "policy" in report.verdict


class TestOutOfFragment:
    def test_untranslatable_query_reported(self, calendar_schema, calendar_policy):
        stmt = bound("SELECT COUNT(*) FROM Events")
        report = diagnose(stmt, {"MyUId": 1}, calendar_policy, calendar_schema)
        assert "fragment" in report.verdict
        assert not report.narrowing_patches
