"""Counterexample-generation tests."""

from repro.diagnose.counterexample import find_counterexample
from repro.evaluate.answers import evaluate_cq
from repro.relalg.cq import Atom, Const
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select


def tr1(sql, schema):
    return translate_select(parse_select(sql), schema).disjuncts[0]


def verify(cx, query, views):
    """A counterexample must satisfy its defining property."""
    for view in views:
        assert evaluate_cq(view.cq, cx.d1) == evaluate_cq(view.cq, cx.d2)
    assert evaluate_cq(query, cx.d1) != evaluate_cq(query, cx.d2)


class TestBlockedQueries:
    def test_q2_alone_has_counterexample(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        query = tr1("SELECT * FROM Events WHERE EId = 2", calendar_schema)
        cx = find_counterexample(query, views)
        assert cx is not None
        verify(cx, query, views)

    def test_all_events_has_counterexample(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        query = tr1("SELECT * FROM Events", calendar_schema)
        cx = find_counterexample(query, views)
        assert cx is not None
        verify(cx, query, views)

    def test_hidden_column_mutation_found(self):
        """Salary is projected away by the directory view; the
        counterexample mutates it rather than deleting the row."""
        from repro.workloads import employees

        schema = employees.make_schema()
        policy = employees.ground_truth_policy()
        views = [
            d for d in policy.view_defs({"MyUId": 1}) if d.name == "Vdir"
        ]
        query = tr1("SELECT Name, Salary FROM Employees", schema)
        cx = find_counterexample(query, views)
        assert cx is not None
        verify(cx, query, views)
        assert "mutated" in cx.perturbation

    def test_trace_facts_constrain_both_instances(
        self, calendar_schema, calendar_policy
    ):
        views = calendar_policy.view_defs({"MyUId": 1})
        # With the attendance fact certified, Q2 is compliant → no
        # counterexample should exist (the fact pins the event row's
        # visibility through V2... the search must at least respect it).
        query = tr1("SELECT * FROM Events WHERE EId = 2", calendar_schema)
        fact = Atom("Attendance", (Const(1), Const(2)))
        cx = find_counterexample(query, views, facts=[fact])
        if cx is not None:
            # If anything is found, both instances must still satisfy the
            # certified fact — i.e. it is a genuine counterexample.
            for instance in (cx.d1, cx.d2):
                assert (1, 2) in instance.get("Attendance", set())
            verify(cx, query, views)

    def test_compliant_query_has_no_counterexample(
        self, calendar_schema, calendar_policy
    ):
        views = calendar_policy.view_defs({"MyUId": 1})
        query = tr1("SELECT EId FROM Attendance WHERE UId = 1", calendar_schema)
        assert find_counterexample(query, views) is None

    def test_describe_renders(self, calendar_schema, calendar_policy):
        views = calendar_policy.view_defs({"MyUId": 1})
        query = tr1("SELECT * FROM Events", calendar_schema)
        cx = find_counterexample(query, views)
        text = cx.describe()
        assert "D1" in text and "D2" in text and "perturbation" in text
