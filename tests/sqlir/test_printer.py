"""Printer tests: canonical text and round-trip stability."""

import pytest

from repro.sqlir.parser import parse_expression, parse_sql
from repro.sqlir.printer import to_sql

ROUNDTRIP_STATEMENTS = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS x FROM t u",
    "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
    "SELECT 1 FROM t WHERE a = 1 AND (b = 2 OR c = 3)",
    "SELECT a FROM t WHERE a IN (1, 2) ORDER BY a DESC LIMIT 3",
    "SELECT a FROM t WHERE b IS NOT NULL",
    "SELECT a FROM r LEFT JOIN s ON r.b = s.b",
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(DISTINCT a) FROM t",
    "INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)",
    "UPDATE t SET a = 3 WHERE b = 'z'",
    "DELETE FROM t WHERE a = 1",
    "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL)",
    "SELECT a FROM t WHERE NOT (b = 2 OR c < 3)",
    "SELECT a FROM t WHERE x <> 'q'",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_STATEMENTS)
def test_roundtrip_fixpoint(sql):
    """parse → print → parse → print is a fixpoint."""
    once = to_sql(parse_sql(sql))
    twice = to_sql(parse_sql(once))
    assert once == twice


@pytest.mark.parametrize("sql", ROUNDTRIP_STATEMENTS)
def test_roundtrip_preserves_ast(sql):
    stmt = parse_sql(sql)
    assert parse_sql(to_sql(stmt)) == stmt


class TestFormatting:
    def test_string_quoting(self):
        assert to_sql(parse_expression("'it''s'")) == "'it''s'"

    def test_null_true_false(self):
        assert to_sql(parse_expression("NULL")) == "NULL"
        assert to_sql(parse_expression("TRUE")) == "TRUE"
        assert to_sql(parse_expression("FALSE")) == "FALSE"

    def test_alias_only_when_different(self):
        assert to_sql(parse_sql("SELECT a FROM t t")) == "SELECT a FROM t"
        assert to_sql(parse_sql("SELECT a FROM tbl x")) == "SELECT a FROM tbl x"

    def test_or_inside_and_parenthesized(self):
        sql = to_sql(parse_sql("SELECT 1 FROM t WHERE a = 1 AND (b = 2 OR c = 3)"))
        assert "(b = 2 OR c = 3)" in sql

    def test_named_parameter_printed(self):
        assert to_sql(parse_expression("?MyUId")) == "?MyUId"

    def test_positional_parameter_printed(self):
        sql = to_sql(parse_sql("SELECT 1 FROM t WHERE a = ?"))
        assert sql.endswith("a = ?")
