"""Skeleton (constant hollowing) tests."""

from repro.sqlir import ast
from repro.sqlir.parser import parse_sql
from repro.sqlir.skeleton import fill, skeletonize


class TestSkeletonize:
    def test_constants_extracted_in_order(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = 5 AND b = 'x'")
        skeleton = skeletonize(stmt)
        # The select-list literal is also a constant slot.
        assert skeleton.values == (1, 5, "x")

    def test_same_shape_same_skeleton(self):
        s1 = skeletonize(parse_sql("SELECT a FROM t WHERE b = 1"))
        s2 = skeletonize(parse_sql("SELECT a FROM t WHERE b = 99"))
        assert s1.statement == s2.statement

    def test_different_shape_different_skeleton(self):
        s1 = skeletonize(parse_sql("SELECT a FROM t WHERE b = 1"))
        s2 = skeletonize(parse_sql("SELECT a FROM t WHERE c = 1"))
        assert s1.statement != s2.statement

    def test_null_and_booleans_stay(self):
        stmt = parse_sql("SELECT a FROM t WHERE b IS NULL AND c = TRUE")
        skeleton = skeletonize(stmt)
        assert skeleton.values == ()

    def test_generalizable_flags(self):
        stmt = parse_sql("SELECT a FROM t WHERE b = 5 AND c >= 10")
        skeleton = skeletonize(stmt)
        assert skeleton.generalizable == (True, False)

    def test_in_list_slots_generalizable(self):
        stmt = parse_sql("SELECT a FROM t WHERE b IN (1, 2)")
        skeleton = skeletonize(stmt)
        assert skeleton.generalizable == (True, True)


class TestFill:
    def test_fill_restores_statement(self):
        stmt = parse_sql("SELECT a FROM t WHERE b = 5 AND c = 'x'")
        skeleton = skeletonize(stmt)
        assert fill(skeleton, skeleton.values) == stmt

    def test_fill_with_new_values(self):
        stmt = parse_sql("SELECT a FROM t WHERE b = 5")
        skeleton = skeletonize(stmt)
        refilled = fill(skeleton, (42,))
        assert isinstance(refilled, ast.Select)
        comparison = refilled.where
        assert comparison.right == ast.Literal(42)
