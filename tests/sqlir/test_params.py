"""Parameter collection and binding tests."""

import pytest

from repro.sqlir import ast
from repro.sqlir.params import bind_parameters, collect_parameters
from repro.sqlir.parser import parse_sql
from repro.sqlir.printer import to_sql
from repro.util.errors import DbacError


class TestCollect:
    def test_positional_and_named(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = ? AND b = ?MyUId AND c = ?")
        positional, named = collect_parameters(stmt)
        assert positional == [0, 1]
        assert named == ["MyUId"]

    def test_named_dedup_keeps_order(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = ?B AND b = ?A AND c = ?B")
        _, named = collect_parameters(stmt)
        assert named == ["B", "A"]

    def test_no_parameters(self):
        assert collect_parameters(parse_sql("SELECT 1 FROM t")) == ([], [])


class TestBind:
    def test_bind_positional(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = ? AND b = ?")
        bound = bind_parameters(stmt, [5, "x"])
        assert to_sql(bound) == "SELECT 1 FROM t WHERE a = 5 AND b = 'x'"

    def test_bind_named(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = ?MyUId")
        bound = bind_parameters(stmt, named={"MyUId": 7})
        assert to_sql(bound) == "SELECT 1 FROM t WHERE a = 7"

    def test_bind_none_becomes_null(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = ?")
        bound = bind_parameters(stmt, [None])
        assert to_sql(bound) == "SELECT 1 FROM t WHERE a = NULL"

    def test_missing_positional_raises(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = ? AND b = ?")
        with pytest.raises(DbacError):
            bind_parameters(stmt, [1])

    def test_missing_named_raises(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = ?X")
        with pytest.raises(DbacError):
            bind_parameters(stmt)

    def test_unsupported_value_type_raises(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = ?")
        with pytest.raises(DbacError):
            bind_parameters(stmt, [object()])

    def test_bind_inside_insert(self):
        stmt = parse_sql("INSERT INTO t VALUES (?, ?)")
        bound = bind_parameters(stmt, [1, "x"])
        assert isinstance(bound, ast.Insert)
        assert bound.rows[0] == (ast.Literal(1), ast.Literal("x"))
