"""Parser tests: statements, expressions, and error positions."""

import pytest

from repro.sqlir import ast
from repro.sqlir.parser import parse_expression, parse_sql, parse_select
from repro.util.errors import ParseError, UnsupportedSqlError


class TestSelect:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items == (ast.SelectItem(ast.Column(None, "a")),)
        assert stmt.sources == (ast.TableRef("t", "t"),)

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.items[0].expr == ast.Star()

    def test_qualified_star(self):
        stmt = parse_select("SELECT e.* FROM Events e")
        assert stmt.items[0].expr == ast.Star(table="e")

    def test_alias_with_as(self):
        stmt = parse_select("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"

    def test_implicit_table_alias(self):
        stmt = parse_select("SELECT a FROM Events e")
        assert stmt.sources[0] == ast.TableRef("Events", "e")

    def test_comma_join(self):
        stmt = parse_select("SELECT 1 FROM r, s")
        assert len(stmt.sources) == 2

    def test_inner_join_on(self):
        stmt = parse_select(
            "SELECT 1 FROM Events e JOIN Attendance a ON e.EId = a.EId"
        )
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "INNER"
        assert isinstance(stmt.joins[0].on, ast.Comparison)

    def test_left_join(self):
        stmt = parse_select("SELECT 1 FROM r LEFT JOIN s ON r.b = s.b")
        assert stmt.joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        stmt = parse_select("SELECT 1 FROM r LEFT OUTER JOIN s ON r.b = s.b")
        assert stmt.joins[0].kind == "LEFT"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_order_by_directions(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_limit(self):
        assert parse_select("SELECT a FROM t LIMIT 5").limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t LIMIT 'x'")

    def test_count_star(self):
        stmt = parse_select("SELECT COUNT(*) FROM t")
        func = stmt.items[0].expr
        assert isinstance(func, ast.FuncCall)
        assert func.args == (ast.Star(),)

    def test_count_distinct_column(self):
        stmt = parse_select("SELECT COUNT(DISTINCT a) FROM t")
        func = stmt.items[0].expr
        assert isinstance(func, ast.FuncCall)
        assert func.distinct


class TestWhere:
    def test_and_flattening(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert isinstance(stmt.where, ast.BoolOp)
        assert stmt.where.op == "AND"
        assert len(stmt.where.operands) == 3

    def test_or_precedence(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a = 1 AND b = 2 OR c = 3")
        assert isinstance(stmt.where, ast.BoolOp)
        assert stmt.where.op == "OR"

    def test_parenthesized_or(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        assert stmt.where.op == "AND"

    def test_not(self):
        stmt = parse_select("SELECT 1 FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.Not)

    def test_in_list(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_not_in_list(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a NOT IN (1, 2)")
        assert stmt.where.negated

    def test_is_null(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a IS NULL")
        assert isinstance(stmt.where, ast.IsNull)
        assert not stmt.where.negated

    def test_is_not_null(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a IS NOT NULL")
        assert stmt.where.negated

    def test_between_desugars(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.BoolOp)
        ops = [c.op for c in stmt.where.operands]
        assert ops == [">=", "<="]

    def test_negative_number_literal(self):
        expr = parse_expression("-5")
        assert expr == ast.Literal(-5)

    def test_arithmetic(self):
        expr = parse_expression("a + 2 * b")
        assert isinstance(expr, ast.Arith)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.Arith)


class TestParameters:
    def test_positional_numbering(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a = ? AND b = ?")
        params = [
            node
            for expr in ast.statement_expressions(stmt)
            for node in ast.walk_expr(expr)
            if isinstance(node, ast.Param)
        ]
        assert [p.index for p in params] == [0, 1]

    def test_named_parameter(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a = ?MyUId")
        params = [
            node
            for expr in ast.statement_expressions(stmt)
            for node in ast.walk_expr(expr)
            if isinstance(node, ast.Param)
        ]
        assert params[0].name == "MyUId"


class TestDml:
    def test_insert_with_columns(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, NULL, TRUE)")
        assert stmt.columns is None
        assert stmt.rows[0][1] == ast.Literal(None)
        assert stmt.rows[0][2] == ast.Literal(True)

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert stmt.assignments[0] == ("a", ast.Literal(1))
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_sql("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_without_where(self):
        assert parse_sql("DELETE FROM t").where is None

    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL,"
            " owner INT REFERENCES Users (UId))"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert not stmt.columns[1].nullable
        assert stmt.columns[2].references == ("Users", "UId")


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT 1 FROM t extra nonsense")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT 1")

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as err:
            parse_sql("SELECT FROM t")
        assert err.value.position is not None

    def test_parse_select_rejects_insert(self):
        with pytest.raises(UnsupportedSqlError):
            parse_select("INSERT INTO t VALUES (1)")

    def test_type_keyword_as_column_name(self):
        stmt = parse_select("SELECT c.Time FROM Events c")
        assert stmt.items[0].expr == ast.Column("c", "Time")
