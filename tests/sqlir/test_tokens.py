"""Lexer tests."""

import pytest

from repro.sqlir.tokens import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAM,
    STRING,
    tokenize,
)
from repro.util.errors import ParseError


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        assert values("select FROM Where") == ["SELECT", "FROM", "WHERE"]

    def test_identifier_keeps_case(self):
        tokens = tokenize("Attendance")
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "Attendance"

    def test_integer_and_float(self):
        assert values("42 3.5") == [42, 3.5]
        assert isinstance(tokenize("42")[0].value, int)
        assert isinstance(tokenize("3.5")[0].value, float)

    def test_string_with_escaped_quote(self):
        assert values("'it''s'") == ["it's"]

    def test_empty_string_literal(self):
        assert values("''") == [""]

    def test_eof_token_present(self):
        assert kinds("SELECT")[-1] == EOF


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", "<=", ">", ">=", "<>"])
    def test_comparison_operators(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].kind == OP
        assert tokens[1].value == op

    def test_bang_equals_normalized(self):
        assert tokenize("a != b")[1].value == "<>"

    def test_punctuation(self):
        assert values("( ) , . ;") == ["(", ")", ",", ".", ";"]


class TestParameters:
    def test_positional_param(self):
        token = tokenize("?")[0]
        assert token.kind == PARAM
        assert token.value is None

    def test_named_param(self):
        token = tokenize("?MyUId")[0]
        assert token.kind == PARAM
        assert token.value == "MyUId"

    def test_named_param_with_underscore_and_digits(self):
        assert tokenize("?user_2")[0].value == "user_2"


class TestCommentsAndErrors:
    def test_line_comment_skipped(self):
        assert values("SELECT -- comment here\n 1") == ["SELECT", 1]

    def test_comment_at_end_of_input(self):
        assert values("SELECT 1 -- trailing") == ["SELECT", 1]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError) as err:
            tokenize("SELECT @")
        assert err.value.position == 7

    def test_number_then_dot_method_like(self):
        # "1." followed by non-digit: the dot belongs to the next token.
        assert values("1.x") == [1, ".", "x"]
