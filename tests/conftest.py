"""Shared fixtures: schemas, databases, and policies used across tests."""

from __future__ import annotations

import pytest

from repro.engine import Column, ColumnType, Database, ForeignKey, Schema, TableSchema
from repro.relalg.translate import DictSchema
from repro.workloads import calendar_app, employees, hospital, social


@pytest.fixture
def calendar_schema() -> Schema:
    return calendar_app.make_schema()


@pytest.fixture
def calendar_db() -> Database:
    return calendar_app.make_database(size=10, seed=3)


@pytest.fixture
def calendar_policy():
    return calendar_app.ground_truth_policy()


@pytest.fixture
def hospital_db() -> Database:
    return hospital.make_database(size=16, seed=11)


@pytest.fixture
def employees_db() -> Database:
    return employees.make_database(size=30, seed=13)


@pytest.fixture
def social_db() -> Database:
    return social.make_database(size=12, seed=17)


@pytest.fixture
def dict_schema() -> DictSchema:
    """A plain two-table schema for relalg unit tests."""
    return DictSchema(
        {
            "R": ["a", "b"],
            "S": ["b", "c"],
            "T": ["x"],
            "Events": ["EId", "Title", "Time", "Loc"],
            "Attendance": ["UId", "EId"],
            "Employees": ["EId", "Name", "Age", "Dept", "ZIP", "Salary"],
        }
    )


@pytest.fixture
def tiny_db() -> Database:
    """A small generic database for engine tests."""
    schema = Schema.of(
        TableSchema(
            "Users",
            (
                Column("UId", ColumnType.INT, nullable=False),
                Column("Name", ColumnType.TEXT, nullable=False),
                Column("Age", ColumnType.INT),
            ),
            primary_key=("UId",),
        ),
        TableSchema(
            "Orders",
            (
                Column("OId", ColumnType.INT, nullable=False),
                Column("UId", ColumnType.INT, nullable=False),
                Column("Total", ColumnType.REAL),
                Column("Note", ColumnType.TEXT),
            ),
            primary_key=("OId",),
            foreign_keys=(ForeignKey("UId", "Users", "UId"),),
        ),
    )
    db = Database(schema)
    db.insert_rows(
        "Users",
        [(1, "alice", 34), (2, "bob", 28), (3, "carol", None)],
    )
    db.insert_rows(
        "Orders",
        [
            (10, 1, 99.5, "gift"),
            (11, 1, 10.0, None),
            (12, 2, 55.25, "rush"),
        ],
    )
    return db
