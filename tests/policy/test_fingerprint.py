"""Policy.fingerprint(): a content hash over the *normalized* view set."""

from repro.policy import Policy, View, policy_from_text, policy_to_text
from repro.workloads import calendar_app

SCHEMA = calendar_app.make_schema()


def _policy(views, name="p"):
    return Policy(views, name=name)


class TestStability:
    def test_sixteen_hex_chars(self, calendar_policy):
        fingerprint = calendar_policy.fingerprint()
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # valid hex

    def test_same_policy_same_fingerprint(self, calendar_policy):
        assert calendar_policy.fingerprint() == calendar_policy.fingerprint()

    def test_view_order_is_irrelevant(self, calendar_policy):
        reordered = _policy(list(reversed(calendar_policy.views)))
        assert reordered.fingerprint() == calendar_policy.fingerprint()

    def test_view_names_and_descriptions_are_irrelevant(self, calendar_policy):
        renamed = _policy(
            [
                View(f"Renamed{i}", view.sql, SCHEMA, f"other description {i}")
                for i, view in enumerate(calendar_policy)
            ]
        )
        assert renamed.fingerprint() == calendar_policy.fingerprint()

    def test_policy_name_is_irrelevant(self, calendar_policy):
        other = _policy(calendar_policy.views, name="completely-different")
        assert other.fingerprint() == calendar_policy.fingerprint()

    def test_sql_whitespace_is_irrelevant(self):
        compact = _policy(
            [View("V", "SELECT EId FROM Attendance WHERE UId = ?MyUId", SCHEMA)]
        )
        spread = _policy(
            [View("V", "SELECT  EId  FROM  Attendance  WHERE  UId  =  ?MyUId", SCHEMA)]
        )
        assert compact.fingerprint() == spread.fingerprint()

    def test_variable_naming_is_irrelevant(self):
        plain = _policy(
            [View("V", "SELECT EId FROM Attendance WHERE UId = ?MyUId", SCHEMA)]
        )
        aliased = _policy(
            [View("V", "SELECT a.EId FROM Attendance a WHERE a.UId = ?MyUId", SCHEMA)]
        )
        assert plain.fingerprint() == aliased.fingerprint()

    def test_serialization_round_trip_preserves_fingerprint(self, calendar_policy):
        text = policy_to_text(calendar_policy)
        restored = policy_from_text(text, SCHEMA, name="restored")
        assert restored.fingerprint() == calendar_policy.fingerprint()


class TestDiscrimination:
    def test_dropping_a_view_changes_the_fingerprint(self, calendar_policy):
        reduced = _policy([v for v in calendar_policy.views if v.name != "V2"])
        assert reduced.fingerprint() != calendar_policy.fingerprint()

    def test_changing_a_constant_changes_the_fingerprint(self):
        one = _policy([View("V", "SELECT Title FROM Events WHERE EId = 1", SCHEMA)])
        two = _policy([View("V", "SELECT Title FROM Events WHERE EId = 2", SCHEMA)])
        assert one.fingerprint() != two.fingerprint()

    def test_changing_a_parameter_changes_the_fingerprint(self):
        mine = _policy(
            [View("V", "SELECT EId FROM Attendance WHERE UId = ?MyUId", SCHEMA)]
        )
        other = _policy(
            [View("V", "SELECT EId FROM Attendance WHERE UId = ?OtherUId", SCHEMA)]
        )
        assert mine.fingerprint() != other.fingerprint()

    def test_projection_changes_the_fingerprint(self):
        narrow = _policy(
            [View("V", "SELECT EId FROM Attendance WHERE UId = ?MyUId", SCHEMA)]
        )
        wide = _policy(
            [View("V", "SELECT EId, UId FROM Attendance WHERE UId = ?MyUId", SCHEMA)]
        )
        assert narrow.fingerprint() != wide.fingerprint()
