"""View object tests."""

import pytest

from repro.policy import View
from repro.util.errors import PolicyError


class TestView:
    def test_from_sql_text(self, calendar_schema):
        view = View("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema)
        assert view.param_names == ["MyUId"]
        assert view.is_conjunctive

    def test_instantiate(self, calendar_schema):
        view = View("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema)
        instantiated = view.instantiate({"MyUId": 3})
        assert not instantiated.params()

    def test_view_def_for_rewriting(self, calendar_schema):
        view = View("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema)
        definition = view.view_def({"MyUId": 3})
        assert definition.name == "V1"
        assert definition.cq.relations() == {"Attendance"}

    def test_union_view_representable_but_not_conjunctive(self, calendar_schema):
        view = View(
            "V", "SELECT EId FROM Attendance WHERE UId = 1 OR UId = 2", calendar_schema
        )
        assert not view.is_conjunctive
        with pytest.raises(PolicyError):
            _ = view.cq
        with pytest.raises(PolicyError):
            view.view_def({})

    def test_untranslatable_view_rejected(self, calendar_schema):
        with pytest.raises(PolicyError):
            View("V", "SELECT COUNT(*) FROM Events", calendar_schema)

    def test_view_against_unknown_table_rejected(self, calendar_schema):
        with pytest.raises(PolicyError):
            View("V", "SELECT x FROM Missing", calendar_schema)


class TestPolicyObject:
    def test_membership_and_lookup(self, calendar_policy):
        assert "V1" in calendar_policy
        assert calendar_policy.view("V2").name == "V2"
        assert len(calendar_policy) == 4

    def test_duplicate_name_rejected(self, calendar_policy, calendar_schema):
        with pytest.raises(PolicyError):
            calendar_policy.add(
                View("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema)
            )

    def test_remove(self, calendar_policy):
        calendar_policy.remove("V4")
        assert "V4" not in calendar_policy
        with pytest.raises(PolicyError):
            calendar_policy.remove("V4")

    def test_with_view_copies(self, calendar_policy, calendar_schema):
        extended = calendar_policy.with_view(
            View("Vnew", "SELECT Title FROM Events WHERE EId = ?MyUId", calendar_schema)
        )
        assert "Vnew" in extended
        assert "Vnew" not in calendar_policy

    def test_param_names_aggregated(self, calendar_policy):
        assert calendar_policy.param_names() == ["MyUId"]

    def test_view_defs_instantiated(self, calendar_policy):
        defs = calendar_policy.view_defs({"MyUId": 5})
        assert len(defs) == 4
        for definition in defs:
            assert not definition.cq.params()
