"""Policy/view comparison tests."""

from repro.policy import Policy, View, compare_policies
from repro.policy.compare import (
    policy_allows,
    view_covered_by,
    view_subsumed,
    views_equivalent,
)
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select


class TestViewEquivalence:
    def test_alias_renaming_irrelevant(self, calendar_schema):
        v1 = View("A", "SELECT EId FROM Attendance a WHERE a.UId = ?MyUId", calendar_schema)
        v2 = View("B", "SELECT EId FROM Attendance x WHERE x.UId = ?MyUId", calendar_schema)
        assert views_equivalent(v1, v2)

    def test_params_aligned_by_name(self, calendar_schema):
        v1 = View("A", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema)
        v2 = View("B", "SELECT EId FROM Attendance WHERE UId = ?Other", calendar_schema)
        assert not views_equivalent(v1, v2)

    def test_subsumption_direction(self, calendar_schema):
        narrow = View(
            "N", "SELECT EId FROM Attendance WHERE UId = ?MyUId AND EId = 1",
            calendar_schema,
        )
        broad = View("B", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema)
        assert view_subsumed(narrow, broad)
        assert not view_subsumed(broad, narrow)


class TestCoverage:
    def test_projection_covered(self, calendar_schema):
        # A narrower projection of a policy view is covered by the policy.
        policy = Policy(
            [View("V", "SELECT EId, Title, Time, Loc FROM Events", calendar_schema)]
        )
        projected = View("P", "SELECT Title FROM Events", calendar_schema)
        assert view_covered_by(projected, policy)

    def test_rejoin_covered(self, calendar_schema):
        # Joining two policy views is still covered information.
        policy = Policy(
            [
                View("VA", "SELECT UId, EId FROM Attendance", calendar_schema),
                View("VE", "SELECT EId, Title, Time, Loc FROM Events", calendar_schema),
            ]
        )
        joined = View(
            "J",
            "SELECT a.UId, e.Title FROM Attendance a JOIN Events e ON e.EId = a.EId",
            calendar_schema,
        )
        assert view_covered_by(joined, policy)

    def test_uncovered_column(self, calendar_schema):
        policy = Policy([View("V", "SELECT EId, Title FROM Events", calendar_schema)])
        wide = View("W", "SELECT EId, Loc FROM Events", calendar_schema)
        assert not view_covered_by(wide, policy)


class TestComparePolicies:
    def test_exact_match(self, calendar_policy):
        comparison = compare_policies(calendar_policy, calendar_policy)
        assert comparison.exact
        assert comparison.precision == 1.0
        assert comparison.recall == 1.0

    def test_missing_view_hurts_recall(self, calendar_policy, calendar_schema):
        partial = Policy([calendar_policy.view("V1"), calendar_policy.view("V2")])
        comparison = compare_policies(partial, calendar_policy)
        assert comparison.recall < 1.0
        assert comparison.precision == 1.0

    def test_extra_view_hurts_precision(self, calendar_policy, calendar_schema):
        extra = Policy(calendar_policy.views)
        extra.add(View("Vbad", "SELECT EId, Title, Time, Loc FROM Events", calendar_schema))
        comparison = compare_policies(extra, calendar_policy)
        assert comparison.precision < 1.0
        assert comparison.recall == 1.0
        assert "Vbad" in comparison.unmatched_candidate

    def test_split_views_still_exact(self, calendar_policy, calendar_schema):
        # Replacing V2 by column-split variants preserves exactness
        # because coverage is information-based.
        split = Policy(
            [v for v in calendar_policy.views if v.name != "V2"]
        )
        split.add(
            View(
                "V2a",
                "SELECT e.EId, e.Title, e.Time, e.Loc FROM Events e"
                " JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
                calendar_schema,
            )
        )
        split.add(
            View(
                "V2b",
                "SELECT a.UId, a.EId FROM Events e"
                " JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
                calendar_schema,
            )
        )
        comparison = compare_policies(split, calendar_policy)
        assert comparison.exact, comparison.describe()


class TestPolicyAllows:
    def test_allows_covered_query(self, calendar_policy, calendar_schema):
        query = translate_select(
            parse_select("SELECT EId FROM Attendance WHERE UId = 4"),
            calendar_schema,
        ).disjuncts[0]
        assert policy_allows(calendar_policy, query, {"MyUId": 4})

    def test_blocks_other_user(self, calendar_policy, calendar_schema):
        query = translate_select(
            parse_select("SELECT EId FROM Attendance WHERE UId = 4"),
            calendar_schema,
        ).disjuncts[0]
        assert not policy_allows(calendar_policy, query, {"MyUId": 5})
