"""Policy text-format round-trip tests."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.policy import Policy, View, policy_from_text, policy_to_text
from repro.policy.compare import views_equivalent
from repro.util.errors import PolicyError
from repro.workloads import calendar_app


class TestRoundTrip:
    def test_roundtrip_preserves_views(self, calendar_policy, calendar_schema):
        text = policy_to_text(calendar_policy)
        restored = policy_from_text(text, calendar_schema, name="restored")
        assert len(restored) == len(calendar_policy)
        for view in calendar_policy:
            assert views_equivalent(view, restored.view(view.name))

    def test_descriptions_preserved(self, calendar_policy, calendar_schema):
        text = policy_to_text(calendar_policy)
        restored = policy_from_text(text, calendar_schema)
        assert restored.view("V1").description

    def test_multiline_sql_joined(self, calendar_schema):
        text = (
            "view V2 -- joined view\n"
            "  SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId\n"
            "  WHERE a.UId = ?MyUId\n"
        )
        policy = policy_from_text(text, calendar_schema)
        assert policy.view("V2").is_conjunctive

    def test_comments_and_blanks_ignored(self, calendar_schema):
        text = "# heading\n\nview V1\n  SELECT EId FROM Attendance WHERE UId = ?MyUId\n"
        policy = policy_from_text(text, calendar_schema)
        assert len(policy) == 1


class TestErrors:
    def test_sql_outside_view_rejected(self, calendar_schema):
        with pytest.raises(PolicyError):
            policy_from_text("SELECT 1 FROM Events", calendar_schema)

    def test_view_without_sql_rejected(self, calendar_schema):
        with pytest.raises(PolicyError):
            policy_from_text("view V1\nview V2\n  SELECT EId FROM Attendance", calendar_schema)

    def test_header_without_name_rejected(self, calendar_schema):
        with pytest.raises(PolicyError):
            policy_from_text("view \n  SELECT 1 FROM Events", calendar_schema)


class TestErrorLineNumbers:
    """Parse errors are ops-facing (hot reload): they must point at a line."""

    def test_sql_outside_view_cites_line_and_text(self, calendar_schema):
        with pytest.raises(PolicyError, match=r"line 3: SQL outside of a view block"):
            policy_from_text(
                "# comment\n\nSELECT 1 FROM Events", calendar_schema
            )

    def test_view_without_sql_cites_header_line(self, calendar_schema):
        with pytest.raises(PolicyError, match=r"line 2: view 'V1' has no SQL"):
            policy_from_text(
                "# heading\nview V1\nview V2\n  SELECT EId FROM Attendance"
                " WHERE UId = ?MyUId",
                calendar_schema,
            )

    def test_trailing_view_without_sql_cites_its_line(self, calendar_schema):
        with pytest.raises(PolicyError, match=r"line 3: view 'V9' has no SQL"):
            policy_from_text(
                "view V1\n  SELECT EId FROM Attendance WHERE UId = ?MyUId\nview V9\n",
                calendar_schema,
            )

    def test_nameless_header_cites_line(self, calendar_schema):
        with pytest.raises(PolicyError, match=r"line 4: view header without a name"):
            policy_from_text(
                "view V1\n  SELECT EId FROM Attendance WHERE UId = ?MyUId\n\n"
                "view -- description but no name\n",
                calendar_schema,
            )

    def test_duplicate_view_name_cites_both_lines(self, calendar_schema):
        with pytest.raises(
            PolicyError,
            match=r"line 3: duplicate view name 'V1' \(first defined on line 1\)",
        ):
            policy_from_text(
                "view V1\n  SELECT EId FROM Attendance WHERE UId = ?MyUId\n"
                "view V1\n  SELECT EId FROM Attendance WHERE UId = ?MyUId\n",
                calendar_schema,
            )

    def test_untranslatable_sql_cites_header_line(self, calendar_schema):
        with pytest.raises(PolicyError, match=r"line 2: view 'Bad'"):
            policy_from_text(
                "# p\nview Bad\n  SELECT Nope FROM NoSuchTable\n", calendar_schema
            )


# -- the serialization round-trip property -----------------------------------------

_CAL_SCHEMA = calendar_app.make_schema()
_CAL_SQLS = [view.sql for view in calendar_app.ground_truth_policy()]

_NAME_ALPHABET = "abcdefghXYZ0123456789_"
_DESC_ALPHABET = "abc XYZ0123 .,:-()?"
_META_KEY_ALPHABET = "abcdefgh0123456789-."


@st.composite
def _serialized_policies(draw) -> tuple[Policy, str]:
    """A random policy over workload views, rendered with random noise.

    Randomizes view names, descriptions, definition order, interleaved
    comment/blank lines, leading/trailing whitespace, and ``# @key
    value`` annotation directives (the provenance channel the mining
    service stamps candidates through) — everything the text format is
    supposed to be insensitive to, plus everything it must preserve.
    """
    order = draw(st.permutations(list(range(len(_CAL_SQLS)))))
    count = draw(st.integers(min_value=1, max_value=len(_CAL_SQLS)))
    views = []
    for position, sql_index in enumerate(order[:count]):
        suffix = draw(st.text(alphabet=_NAME_ALPHABET, max_size=6))
        name = f"W{position}_{suffix}"
        description = draw(st.text(alphabet=_DESC_ALPHABET, max_size=24))
        while "--" in description:
            description = description.replace("--", "-")
        views.append(View(name, _CAL_SQLS[sql_index], _CAL_SCHEMA, description.strip()))
    meta = draw(
        st.dictionaries(
            st.text(alphabet=_META_KEY_ALPHABET, min_size=1, max_size=12),
            st.text(alphabet=_DESC_ALPHABET, max_size=24).map(str.strip),
            max_size=4,
        )
    )
    policy = Policy(views, name="generated", meta=meta)

    noise = st.one_of(
        st.just(""),
        st.text(alphabet=" \t", max_size=3).map(lambda s: s),
        st.text(alphabet=_DESC_ALPHABET, max_size=12).map(lambda s: f"# {s}"),
    )
    lines: list[str] = []
    for line in policy_to_text(policy).splitlines():
        if draw(st.booleans()):
            lines.append(draw(noise))
        indent = draw(st.text(alphabet=" \t", max_size=4))
        trailer = draw(st.text(alphabet=" \t", max_size=4))
        lines.append(f"{indent}{line}{trailer}")
    if draw(st.booleans()):
        lines.append(draw(noise))
    return policy, "\n".join(lines)


class TestRoundTripProperty:
    @given(_serialized_policies())
    @settings(max_examples=60, deadline=None)
    def test_parse_of_rendered_policy_is_equivalent(self, case):
        policy, noisy_text = case
        restored = policy_from_text(noisy_text, _CAL_SCHEMA, name="restored")
        assert len(restored) == len(policy)
        for view in policy:
            assert views_equivalent(view, restored.view(view.name))
        # Annotation directives are provenance, not content: they must
        # round-trip exactly without perturbing the content fingerprint.
        assert restored.meta == policy.meta
        assert restored.fingerprint() == policy.fingerprint()
