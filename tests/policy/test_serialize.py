"""Policy text-format round-trip tests."""

import pytest

from repro.policy import Policy, View, policy_from_text, policy_to_text
from repro.policy.compare import views_equivalent
from repro.util.errors import PolicyError


class TestRoundTrip:
    def test_roundtrip_preserves_views(self, calendar_policy, calendar_schema):
        text = policy_to_text(calendar_policy)
        restored = policy_from_text(text, calendar_schema, name="restored")
        assert len(restored) == len(calendar_policy)
        for view in calendar_policy:
            assert views_equivalent(view, restored.view(view.name))

    def test_descriptions_preserved(self, calendar_policy, calendar_schema):
        text = policy_to_text(calendar_policy)
        restored = policy_from_text(text, calendar_schema)
        assert restored.view("V1").description

    def test_multiline_sql_joined(self, calendar_schema):
        text = (
            "view V2 -- joined view\n"
            "  SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId\n"
            "  WHERE a.UId = ?MyUId\n"
        )
        policy = policy_from_text(text, calendar_schema)
        assert policy.view("V2").is_conjunctive

    def test_comments_and_blanks_ignored(self, calendar_schema):
        text = "# heading\n\nview V1\n  SELECT EId FROM Attendance WHERE UId = ?MyUId\n"
        policy = policy_from_text(text, calendar_schema)
        assert len(policy) == 1


class TestErrors:
    def test_sql_outside_view_rejected(self, calendar_schema):
        with pytest.raises(PolicyError):
            policy_from_text("SELECT 1 FROM Events", calendar_schema)

    def test_view_without_sql_rejected(self, calendar_schema):
        with pytest.raises(PolicyError):
            policy_from_text("view V1\nview V2\n  SELECT EId FROM Attendance", calendar_schema)

    def test_header_without_name_rejected(self, calendar_schema):
        with pytest.raises(PolicyError):
            policy_from_text("view \n  SELECT 1 FROM Events", calendar_schema)
