"""Policy-linter tests."""

from repro.policy import Policy, View, lint_policy


def codes(findings, view=None):
    return {
        f.code
        for f in findings
        if view is None or f.view == view
    }


class TestCleanPolicies:
    def test_calendar_ground_truth_clean(self, calendar_policy):
        assert lint_policy(calendar_policy) == []

    def test_empty_policy_clean(self):
        assert lint_policy(Policy(name="empty")) == []


class TestBroadViews:
    def test_unparameterized_view_flagged(self, calendar_schema):
        policy = Policy(
            [
                View("Vme", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema),
                View("Vall", "SELECT Title FROM Events", calendar_schema),
            ]
        )
        findings = lint_policy(policy)
        assert codes(findings, "Vall") == {"broad"}
        assert codes(findings, "Vme") == set()


class TestRedundantViews:
    def test_projection_of_other_view_flagged(self, calendar_schema):
        policy = Policy(
            [
                View("Vfull", "SELECT UId, EId FROM Attendance WHERE UId = ?MyUId", calendar_schema),
                View("Vnarrow", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema),
            ]
        )
        findings = lint_policy(policy)
        assert "redundant" in codes(findings, "Vnarrow")
        assert "redundant" not in codes(findings, "Vfull")

    def test_independent_views_not_flagged(self, calendar_policy):
        assert all(f.code != "redundant" for f in lint_policy(calendar_policy))


class TestParamTypos:
    def test_lone_param_flagged(self, calendar_schema):
        policy = Policy(
            [
                View("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema),
                View("V2", "SELECT * FROM Users WHERE UId = ?MyUId", calendar_schema),
                View("Voops", "SELECT Title FROM Events e JOIN Attendance a"
                     " ON e.EId = a.EId WHERE a.UId = ?MyUid", calendar_schema),
            ]
        )
        findings = lint_policy(policy)
        assert "lone-param" in codes(findings, "Voops")

    def test_single_view_policy_no_lone_param(self, calendar_schema):
        policy = Policy(
            [View("V", "SELECT EId FROM Attendance WHERE UId = ?MyUId", calendar_schema)]
        )
        assert all(f.code != "lone-param" for f in lint_policy(policy))


class TestNonConjunctive:
    def test_union_view_flagged(self, calendar_schema):
        policy = Policy(
            [
                View(
                    "Vunion",
                    "SELECT EId FROM Attendance WHERE UId = 1 OR UId = 2",
                    calendar_schema,
                )
            ]
        )
        findings = lint_policy(policy)
        assert "non-conjunctive" in codes(findings, "Vunion")
        assert any(f.severity == "warning" for f in findings)


class TestCli:
    def test_lint_subcommand_clean(self, capsys):
        from repro.cli import main

        assert main(["lint", "--app", "calendar"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_policy_file(self, tmp_path, capsys):
        from repro.cli import main

        policy_file = tmp_path / "p.txt"
        policy_file.write_text(
            "view Vall\n  SELECT Title FROM Events\n"
        )
        code = main(["lint", "--app", "calendar", "--policy-file", str(policy_file)])
        assert code == 0  # info-only findings
        assert "broad" in capsys.readouterr().out
