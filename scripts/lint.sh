#!/usr/bin/env sh
# Lint the repository (the `make lint` equivalent).
#
# Uses ruff (configured in pyproject.toml) when available; otherwise
# falls back to a byte-compile pass so offline containers without ruff
# still catch syntax errors and obvious breakage.
set -eu
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    exec ruff check src tests benchmarks examples
elif python -c 'import ruff' >/dev/null 2>&1; then
    exec python -m ruff check src tests benchmarks examples
else
    echo "ruff not installed; falling back to compileall (syntax only)" >&2
    exec python -m compileall -q src tests benchmarks examples
fi
